// Incremental semi-Markov training and the shared transient-analysis cache.
//
// The contract under test is exactness: extend() must produce a chain
// bit-identical to retraining from scratch on the concatenated history, the
// batched hit_curve() must match per-threshold hit_one() to 1e-12, and a
// cached BidCurve must answer exactly like a cache-less one — so switching
// the replay to the warm path cannot change a single decision.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/failure_model.hpp"
#include "core/strategies.hpp"
#include "market/semi_markov.hpp"
#include "market/spot_trace.hpp"
#include "replay/replay_engine.hpp"
#include "replay/workloads.hpp"

namespace jupiter {
namespace {

/// A deterministic pseudo-random change-point trace.  Prices revisit a small
/// set (so transitions repeat and counts exceed 1) but occasionally leave it
/// (so extend() has to insert brand-new states mid-stream).
SpotTrace synthetic_trace(SimTime start, SimTime end, std::uint64_t seed) {
  SpotTrace t;
  std::uint64_t x = seed * 2654435761u + 1;
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  SimTime at = start;
  int last = -1;
  while (at < end) {
    int p = 40 + static_cast<int>(next() % 8) * 5;
    if (next() % 17 == 0) p = 100 + static_cast<int>(next() % 40);  // spike
    if (p != last) {
      t.append(at, PriceTick(p));
      last = p;
    }
    at += static_cast<TimeDelta>(3 * kMinute + (next() % (2 * kHour)));
  }
  return t;
}

void expect_chains_identical(const SemiMarkovChain& a,
                             const SemiMarkovChain& b) {
  ASSERT_EQ(a.state_count(), b.state_count());
  for (int s = 0; s < a.state_count(); ++s) {
    EXPECT_EQ(a.state_price(s).value(), b.state_price(s).value()) << "s=" << s;
    auto ra = a.row(s);
    auto rb = b.row(s);
    ASSERT_EQ(ra.size(), rb.size()) << "s=" << s;
    for (std::size_t c = 0; c < ra.size(); ++c) {
      EXPECT_EQ(ra[c].next, rb[c].next) << "s=" << s << " c=" << c;
      EXPECT_EQ(ra[c].sojourn, rb[c].sojourn) << "s=" << s << " c=" << c;
      EXPECT_EQ(ra[c].count, rb[c].count) << "s=" << s << " c=" << c;
      // prob = count / total with identical exact-integer sums: bit-equal.
      EXPECT_EQ(ra[c].prob, rb[c].prob) << "s=" << s << " c=" << c;
    }
    for (int age : {0, 1, 7, 60, 600}) {
      EXPECT_EQ(a.survival(s, age), b.survival(s, age))
          << "s=" << s << " age=" << age;
    }
  }
}

TEST(IncrementalModel, ExtendMatchesFullRetrain) {
  SimTime t0(0), t1(2 * kWeek), t2(3 * kWeek);
  SpotTrace full = synthetic_trace(t0, t2, 11);

  SemiMarkovChain warm = SemiMarkovChain::estimate(full.slice(t0, t1));
  int folded = warm.extend(full, t1, t2);
  EXPECT_GT(folded, 0);

  SemiMarkovChain fresh = SemiMarkovChain::estimate(full.slice(t0, t2));
  expect_chains_identical(warm, fresh);
}

TEST(IncrementalModel, ExtendInManyStepsMatchesOneShot) {
  SimTime t0(0), end(3 * kWeek);
  SpotTrace full = synthetic_trace(t0, end, 23);

  SemiMarkovChain warm = SemiMarkovChain::estimate(full.slice(t0, SimTime(kWeek)));
  for (SimTime t(kWeek); t < end; t += 6 * kHour) {
    warm.extend(full, t, std::min(t + 6 * kHour, end));
  }
  SemiMarkovChain fresh = SemiMarkovChain::estimate(full.slice(t0, end));
  expect_chains_identical(warm, fresh);
}

TEST(IncrementalModel, ExtendIntroducesNewStates) {
  // Train on a window without spikes, then extend over one that has them:
  // the spike prices must appear as new states, exactly as in a retrain.
  SpotTrace full;
  full.append(SimTime(0), PriceTick(10));
  full.append(SimTime(10 * kMinute), PriceTick(20));
  full.append(SimTime(25 * kMinute), PriceTick(10));
  full.append(SimTime(40 * kMinute), PriceTick(20));
  // after the training cut: revisit old states and add 15 and 50
  full.append(SimTime(70 * kMinute), PriceTick(50));
  full.append(SimTime(80 * kMinute), PriceTick(15));
  full.append(SimTime(95 * kMinute), PriceTick(10));

  SimTime cut(60 * kMinute), end(2 * kHour);
  SemiMarkovChain warm = SemiMarkovChain::estimate(full.slice(SimTime(0), cut));
  EXPECT_EQ(warm.state_count(), 2);
  EXPECT_EQ(warm.extend(full, cut, end), 3);
  EXPECT_EQ(warm.state_count(), 4);

  SemiMarkovChain fresh =
      SemiMarkovChain::estimate(full.slice(SimTime(0), end));
  expect_chains_identical(warm, fresh);
}

TEST(IncrementalModel, ExtendSkipsAlreadyFoldedPoints) {
  SimTime t0(0), t1(kWeek), t2(2 * kWeek);
  SpotTrace full = synthetic_trace(t0, t2, 7);
  SemiMarkovChain warm = SemiMarkovChain::estimate(full.slice(t0, t1));
  SemiMarkovChain before = warm;
  // Overlapping window: everything at or before the tail must be ignored.
  EXPECT_EQ(warm.extend(full, t0, t1), 0);
  expect_chains_identical(warm, before);
}

TEST(IncrementalModel, BatchedHitCurveMatchesHitOne) {
  SpotTrace tr = synthetic_trace(SimTime(0), SimTime(2 * kWeek), 31);
  SemiMarkovChain chain = SemiMarkovChain::estimate(tr);
  for (int state : {0, chain.state_count() / 2, chain.state_count() - 1}) {
    for (int age : {0, 4, 200}) {
      for (int horizon : {1, 60, 360}) {
        auto curve = chain.hit_curve(state, age, horizon);
        ASSERT_EQ(static_cast<int>(curve.size()), chain.state_count());
        for (int b = 0; b < chain.state_count(); ++b) {
          // The batched DP replicates hit_one's arithmetic: bit-identical,
          // which is stronger than the 1e-12 the cache contract requires.
          EXPECT_EQ(curve[b], chain.hit_one(state, age, horizon, b))
              << "state=" << state << " age=" << age << " horizon=" << horizon
              << " b=" << b;
        }
      }
    }
  }
}

TEST(IncrementalModel, HitProbabilityMatchesResolvedThreshold) {
  SpotTrace tr = synthetic_trace(SimTime(0), SimTime(kWeek), 43);
  SemiMarkovChain chain = SemiMarkovChain::estimate(tr);
  int state = chain.state_count() / 2;
  // Probe between, at, below, and above the state prices: the resolved
  // threshold is the largest state price <= bid.
  for (int v = chain.state_price(0).value() - 3;
       v <= chain.state_price(chain.state_count() - 1).value() + 3; ++v) {
    PriceTick bid(v);
    double got = chain.hit_probability(state, 0, 120, bid);
    double want;
    if (bid < chain.state_price(state)) {
      want = 1.0;
    } else {
      int idx = -1;
      for (int i = 0; i < chain.state_count(); ++i) {
        if (chain.state_price(i) <= bid) idx = i;
      }
      want = idx < 0 ? 1.0 : chain.hit_one(state, 0, 120, idx);
    }
    EXPECT_EQ(got, want) << "bid=" << v;
  }
}

TEST(IncrementalModel, CachedBidCurveMatchesFreshAndCountsHits) {
  SpotTrace tr = synthetic_trace(SimTime(0), SimTime(2 * kWeek), 57);
  for (OobEstimator est :
       {OobEstimator::kFirstPassage, OobEstimator::kOccupancy}) {
    ZoneFailureModel model(SemiMarkovChain::estimate(tr), PriceTick(200),
                           kOnDemandFailureProbability, est);
    // Cache-less reference: a curve built directly on the chain.
    MarketZoneState st{0, PriceTick(55), 12, PriceTick(200)};
    int state = model.chain().nearest_state(st.price);
    BidCurve fresh(&model.chain(), state, st.age_minutes, 90, st.price,
                   PriceTick(200), kOnDemandFailureProbability, est);

    BidCurve cached = model.bid_curve(st, 90);
    BidCurve cached2 = model.bid_curve(st, 90);  // same key, same entry
    for (int i = 0; i < model.chain().state_count(); ++i) {
      EXPECT_EQ(cached.oob_at_index(i), fresh.oob_at_index(i)) << "i=" << i;
      EXPECT_EQ(cached2.oob_at_index(i), fresh.oob_at_index(i)) << "i=" << i;
    }
    auto s = model.cache_stats();
    // Second curve re-read every index from the shared entry.
    EXPECT_GE(s.hits, static_cast<std::uint64_t>(model.chain().state_count()));
    EXPECT_GT(s.misses, 0u);
    EXPECT_GT(s.hit_rate(), 0.0);

    for (int v = 50; v < 200; v += 7) {
      EXPECT_EQ(cached.fp_at(PriceTick(v)), fresh.fp_at(PriceTick(v)));
    }
    for (double target : {0.005, 0.0103, 0.05, 0.3}) {
      EXPECT_EQ(cached.min_bid_for_fp(target), fresh.min_bid_for_fp(target));
    }

    // Retraining must drop the memoized values (fresh stats keep counting).
    SpotTrace longer = synthetic_trace(SimTime(0), SimTime(3 * kWeek), 57);
    EXPECT_TRUE(model.extend(longer, SimTime(2 * kWeek), SimTime(3 * kWeek)));
    BidCurve after = model.bid_curve(st, 90);
    BidCurve refreshed(&model.chain(), model.chain().nearest_state(st.price),
                       st.age_minutes, 90, st.price, PriceTick(200),
                       kOnDemandFailureProbability, est);
    for (int i = 0; i < model.chain().state_count(); ++i) {
      EXPECT_EQ(after.oob_at_index(i), refreshed.oob_at_index(i)) << "i=" << i;
    }
  }
}

TEST(IncrementalModel, PrimeAllMatchesLazyValues) {
  SpotTrace tr = synthetic_trace(SimTime(0), SimTime(2 * kWeek), 63);
  ZoneFailureModel model(SemiMarkovChain::estimate(tr), PriceTick(200));
  MarketZoneState st{0, PriceTick(50), 0, PriceTick(200)};
  BidCurve primed = model.bid_curve(st, 120);
  primed.prime_all();
  int state = model.chain().nearest_state(st.price);
  for (int i = 0; i < model.chain().state_count(); ++i) {
    EXPECT_NEAR(primed.oob_at_index(i),
                model.chain().hit_one(state, 0, 120, i), 1e-12)
        << "i=" << i;
  }
}

TEST(IncrementalModel, WarmStrategyReplaysIdenticallyToNaive) {
  Scenario sc = make_scenario(InstanceKind::kM1Small, 1, 1, 321);
  ServiceSpec spec = ServiceSpec::lock_service();
  ReplayConfig cfg = make_replay_config(sc, spec, 6 * kHour);
  OnlineBidder::Options bopts;
  bopts.horizon_minutes = static_cast<int>((6 * kHour) / kMinute);

  JupiterStrategy warm(sc.book, spec, sc.history_start, bopts);
  ReplayResult rw = replay_strategy(sc.book, warm, cfg);

  JupiterStrategy naive(sc.book, spec, sc.history_start, bopts);
  naive.set_incremental(false);
  ReplayResult rn = replay_strategy(sc.book, naive, cfg);

  EXPECT_EQ(rw.cost.micros(), rn.cost.micros());
  EXPECT_EQ(rw.downtime, rn.downtime);
  EXPECT_EQ(rw.decisions, rn.decisions);
  EXPECT_EQ(rw.out_of_bid_events, rn.out_of_bid_events);
  EXPECT_EQ(rw.instances_launched, rn.instances_launched);
  // The warm run actually hit its caches.
  auto s = warm.cache_stats();
  EXPECT_GT(s.hits + s.misses, 0u);
}

}  // namespace
}  // namespace jupiter
