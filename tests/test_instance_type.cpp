#include "cloud/instance_type.hpp"

#include <gtest/gtest.h>

#include "cloud/region.hpp"

namespace jupiter {
namespace {

TEST(InstanceType, NamesAndShapes) {
  EXPECT_STREQ(instance_type_info(InstanceKind::kM1Small).name,
               "linux.m1.small");
  EXPECT_STREQ(instance_type_info(InstanceKind::kM3Large).name,
               "linux.m3.large");
  EXPECT_EQ(instance_type_info(InstanceKind::kM3Large).vcpus, 2);
}

TEST(InstanceType, LookupByName) {
  EXPECT_EQ(instance_kind_by_name("linux.m1.small"), InstanceKind::kM1Small);
  EXPECT_EQ(instance_kind_by_name("linux.m3.large"), InstanceKind::kM3Large);
  EXPECT_THROW(instance_kind_by_name("linux.z9.huge"), std::invalid_argument);
}

// §5.2: m1.small on-demand is $0.044-0.061/h, m3.large is $0.14-0.201/h.
TEST(InstanceType, PaperPriceRanges) {
  Money m1_min = Money::from_dollars(1e9), m1_max;
  Money m3_min = Money::from_dollars(1e9), m3_max;
  for (int r = 0; r < 9; ++r) {
    Money m1 = on_demand_price(r, InstanceKind::kM1Small);
    Money m3 = on_demand_price(r, InstanceKind::kM3Large);
    m1_min = std::min(m1_min, m1);
    m1_max = std::max(m1_max, m1);
    m3_min = std::min(m3_min, m3);
    m3_max = std::max(m3_max, m3);
  }
  EXPECT_EQ(m1_min, Money::from_dollars(0.044));
  EXPECT_EQ(m1_max, Money::from_dollars(0.061));
  EXPECT_EQ(m3_min, Money::from_dollars(0.140));
  EXPECT_EQ(m3_max, Money::from_dollars(0.201));
}

TEST(InstanceType, CheapestMatchesMinimum) {
  EXPECT_EQ(cheapest_on_demand_price(InstanceKind::kM1Small),
            Money::from_dollars(0.044));
  EXPECT_EQ(cheapest_on_demand_price(InstanceKind::kM3Large),
            Money::from_dollars(0.140));
}

TEST(InstanceType, ZonePriceInheritsRegion) {
  int tokyo_a = zone_index_by_name("ap-northeast-1a");
  ASSERT_GE(tokyo_a, 0);
  EXPECT_EQ(on_demand_price_zone(tokyo_a, InstanceKind::kM1Small),
            Money::from_dollars(0.061));
  EXPECT_THROW(on_demand_price_zone(-1, InstanceKind::kM1Small),
               std::out_of_range);
  EXPECT_THROW(on_demand_price_zone(24, InstanceKind::kM1Small),
               std::out_of_range);
}

TEST(InstanceType, SpotBidCapIsFourTimesOnDemand) {
  EXPECT_EQ(spot_bid_cap(0, InstanceKind::kM1Small),
            Money::from_dollars(0.176));
}

TEST(InstanceType, BadRegionThrows) {
  EXPECT_THROW(on_demand_price(-1, InstanceKind::kM1Small),
               std::out_of_range);
  EXPECT_THROW(on_demand_price(9, InstanceKind::kM1Small), std::out_of_range);
}

class AllKinds : public ::testing::TestWithParam<int> {};

// Property: every type has positive prices everywhere and regional spread.
TEST_P(AllKinds, PricesPositiveWithRegionalSpread) {
  auto kind = static_cast<InstanceKind>(GetParam());
  Money lo = Money::from_dollars(1e9), hi;
  for (int r = 0; r < 9; ++r) {
    Money p = on_demand_price(r, kind);
    EXPECT_GT(p.micros(), 0);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi, lo);
  EXPECT_LT(hi.micros(), lo.micros() * 2);  // spread < 2x within a type
}

INSTANTIATE_TEST_SUITE_P(Grid, AllKinds,
                         ::testing::Range(0, kInstanceKindCount));

}  // namespace
}  // namespace jupiter
