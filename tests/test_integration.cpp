// End-to-end integration: the full stack working together —
// synthetic market -> failure model -> bidding framework -> cloud provider
// -> Paxos-replicated lock service with clients, across out-of-bid churn.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "lock/lock_service.hpp"
#include "replay/sweep.hpp"
#include "storage/kv_store.hpp"

namespace jupiter {
namespace {

TEST(Integration, MiniSweepShapeMatchesPaper) {
  // A 4-week scenario (2 train + 2 replay) over the 17 experiment zones:
  // Jupiter must be far cheaper than on-demand while at least matching
  // Extra(0,0.2)'s availability.
  Scenario sc = make_scenario(InstanceKind::kM1Small, 2, 2, 5150);
  ServiceSpec spec = ServiceSpec::lock_service();
  SweepOptions opts;
  opts.intervals = {6 * kHour};
  opts.extras = {{0, 0.2}};
  auto cells = run_sweep(sc, spec, opts);
  ASSERT_EQ(cells.size(), 2u);
  const ReplayResult* jup = nullptr;
  const ReplayResult* extra = nullptr;
  for (const auto& c : cells) {
    if (c.strategy == "Jupiter") jup = &c.result;
    if (c.strategy.rfind("Extra", 0) == 0) extra = &c.result;
  }
  ASSERT_NE(jup, nullptr);
  ASSERT_NE(extra, nullptr);
  Money base = baseline_cost(spec, sc.replay_end - sc.replay_start);

  EXPECT_LT(jup->cost, base / 2);  // massive reduction vs on-demand
  EXPECT_GE(jup->availability(), extra->availability());
  EXPECT_GE(jup->availability(), 0.999);
}

TEST(Integration, StorageSweepUsesErasureQuorums) {
  Scenario sc = make_scenario(InstanceKind::kM3Large, 2, 1, 5151);
  ServiceSpec spec = ServiceSpec::storage_service();
  SweepOptions opts;
  opts.intervals = {3 * kHour};
  opts.extras = {};
  auto cells = run_sweep(sc, spec, opts);
  ASSERT_EQ(cells.size(), 1u);
  const ReplayResult& r = cells[0].result;
  Money base = baseline_cost(spec, sc.replay_end - sc.replay_start);
  EXPECT_LT(r.cost, base / 2);
  EXPECT_GE(r.availability(), 0.995);
  EXPECT_GE(r.mean_nodes, 3.0);
}

TEST(Integration, LiveLockServiceOnSpotInstances) {
  // The feasibility experiment in miniature: a Paxos lock service running
  // on simulated spot instances driven by the bidding framework, with real
  // clients acquiring locks across instance churn.
  std::vector<int> zones = {0, 1, 4, 5, 7};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(3 * kWeek), 61);
  ServiceSpec spec = ServiceSpec::lock_service();

  Simulator sim;
  CloudProvider provider(sim, book, 62);
  JupiterStrategy strategy(book, spec, SimTime(0), {.horizon_minutes = 60});
  BiddingFramework fw(sim, provider, book, strategy, spec, zones,
                      {.interval = kHour, .lead_time = 700});
  SimTime start(2 * kWeek);
  fw.start(start);
  sim.run_until(start + kHour);

  // The framework holds a quorum of instances; check the service-level
  // availability ledger over 12 hours of churn.
  sim.run_until(start + 12 * kHour);
  EXPECT_GE(fw.availability(), 0.97);
  EXPECT_GT(fw.total_cost().micros(), 0);
  // Cost sanity: far below 12h of 5 on-demand nodes.
  EXPECT_LT(fw.total_cost(), Money::from_dollars(0.044) * 5 * 13);
  fw.stop();
}

TEST(Integration, PaxosLockServiceUnderInstanceChurn) {
  // Lock service on a Paxos group whose nodes crash/restart like spot
  // instances: sessions and safety survive as long as a majority lives.
  Simulator sim;
  paxos::SimNetwork net(sim, 71);
  std::map<paxos::NodeId, lock::LockServiceState*> sms;
  paxos::Group group(
      sim, net, paxos::Replica::Options{},
      [&](paxos::NodeId id) {
        auto sm = std::make_unique<lock::LockServiceState>();
        sms[id] = sm.get();
        return sm;
      },
      72);
  group.bootstrap(5);
  sim.run_until(sim.now() + 200);

  lock::LockClient client(group, sim, "app", 36000);
  client.open_session();
  sim.run_until(sim.now() + 100);

  Rng rng(73);
  int acquired = 0, attempts = 0;
  for (int round = 0; round < 20; ++round) {
    // Churn: crash one random node, restart another.
    auto victim = static_cast<paxos::NodeId>(rng.below(5));
    if (group.replica(victim).alive()) group.crash(victim);
    for (paxos::NodeId id : group.node_ids()) {
      if (!group.replica(id).alive() && id != victim) {
        group.restart(id);
        break;
      }
    }
    sim.run_until(sim.now() + 120);
    ++attempts;
    std::string path = "/churn/" + std::to_string(round);
    bool got = false;
    client.acquire_blocking(path, [&](lock::LockResponse r) {
      got = r.status == lock::LockStatus::kOk;
    });
    sim.run_until(sim.now() + 400);
    if (got) ++acquired;
  }
  // A majority was alive throughout (we never crash below 4/5), so most
  // acquisitions must succeed.
  EXPECT_GE(acquired, attempts * 3 / 4);
}

}  // namespace
}  // namespace jupiter
