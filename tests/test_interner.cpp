// util::Interner — the dense u32 string-id table behind zone lookup, lock
// session/resource keys and paxos routing.  The contracts that matter:
// ids are dense and assigned in first-intern order (so id order is
// insertion order, usable as a deterministic sort key), lookup never mints,
// and stored strings stay stable as the table grows.
#include "util/interner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace jupiter {
namespace {

TEST(Interner, DenseIdsInFirstInternOrder) {
  Interner in;
  EXPECT_EQ(in.size(), 0u);
  EXPECT_EQ(in.intern("us-east-1a"), 0u);
  EXPECT_EQ(in.intern("us-east-1b"), 1u);
  EXPECT_EQ(in.intern("eu-west-1a"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interner, DuplicateInternReturnsSameId) {
  Interner in;
  Interner::Id a = in.intern("session-7");
  Interner::Id b = in.intern("session-7");
  EXPECT_EQ(a, b);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, LookupNeverMints) {
  Interner in;
  in.intern("present");
  EXPECT_EQ(in.lookup("absent"), Interner::kNone);
  EXPECT_EQ(in.size(), 1u);  // the failed lookup must not create an id
  EXPECT_NE(in.lookup("present"), Interner::kNone);
}

TEST(Interner, StrRoundTrips) {
  Interner in;
  Interner::Id id = in.intern("lock:/jupiter/master");
  EXPECT_EQ(in.str(id), "lock:/jupiter/master");
}

TEST(Interner, StableUnderGrowth) {
  // The id -> string mapping must survive arbitrary growth (storage must
  // not invalidate earlier entries when it expands).
  Interner in;
  std::string_view first = "zone-0";
  Interner::Id id0 = in.intern(first);
  const char* addr0 = in.str(id0).data();
  for (int i = 1; i < 10'000; ++i) {
    in.intern("zone-" + std::to_string(i));
  }
  EXPECT_EQ(in.size(), 10'000u);
  EXPECT_EQ(in.str(id0), "zone-0");
  EXPECT_EQ(in.str(id0).data(), addr0) << "stored strings must not move";
  for (int i = 0; i < 10'000; ++i) {
    std::string name = "zone-" + std::to_string(i);
    Interner::Id id = in.lookup(name);
    ASSERT_NE(id, Interner::kNone) << name;
    EXPECT_EQ(static_cast<int>(id), i) << "ids are dense, insertion-ordered";
    EXPECT_EQ(in.str(id), name);
  }
}

TEST(Interner, InternDoesNotAliasCallerBuffer) {
  // The interner must own its copy: intern from a buffer that dies.
  Interner in;
  Interner::Id id;
  {
    std::string temp = "ephemeral-name";
    id = in.intern(temp);
  }
  EXPECT_EQ(in.str(id), "ephemeral-name");
  EXPECT_EQ(in.lookup("ephemeral-name"), id);
}

}  // namespace
}  // namespace jupiter
