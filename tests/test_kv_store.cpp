#include "storage/kv_store.hpp"

#include <gtest/gtest.h>

namespace jupiter::storage {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

KvResponse run(KvStoreState& sm, const KvCommand& c) {
  return KvResponse::decode(sm.apply(c.encode()));
}

TEST(KvCommand, EncodeDecodeRoundTrip) {
  KvCommand c;
  c.op = KvOp::kPut;
  c.key = "object/42";
  c.value = bytes("payload \x01\x02");
  KvCommand d = KvCommand::decode(c.encode());
  EXPECT_EQ(d.op, c.op);
  EXPECT_EQ(d.key, c.key);
  EXPECT_EQ(d.value, c.value);
}

TEST(KvResponse, EncodeDecodeRoundTrip) {
  KvResponse r;
  r.status = KvStatus::kNotFound;
  r.value = bytes("v");
  KvResponse d = KvResponse::decode(r.encode());
  EXPECT_EQ(d.status, r.status);
  EXPECT_EQ(d.value, r.value);
}

TEST(KvStoreState, PutGetDelete) {
  KvStoreState sm;
  KvCommand put;
  put.op = KvOp::kPut;
  put.key = "k";
  put.value = bytes("v1");
  EXPECT_EQ(run(sm, put).status, KvStatus::kOk);
  EXPECT_EQ(sm.keys(), 1u);

  KvCommand get;
  get.op = KvOp::kGet;
  get.key = "k";
  KvResponse r = run(sm, get);
  EXPECT_EQ(r.status, KvStatus::kOk);
  EXPECT_EQ(r.value, bytes("v1"));

  put.value = bytes("v2");  // overwrite
  run(sm, put);
  EXPECT_EQ(run(sm, get).value, bytes("v2"));

  KvCommand del;
  del.op = KvOp::kDelete;
  del.key = "k";
  EXPECT_EQ(run(sm, del).status, KvStatus::kOk);
  EXPECT_EQ(run(sm, get).status, KvStatus::kNotFound);
  EXPECT_EQ(run(sm, del).status, KvStatus::kNotFound);
}

TEST(KvStoreState, GetMissingKey) {
  KvStoreState sm;
  KvCommand get;
  get.op = KvOp::kGet;
  get.key = "nope";
  EXPECT_EQ(run(sm, get).status, KvStatus::kNotFound);
  EXPECT_EQ(sm.get("nope"), std::nullopt);
}

TEST(KvStoreState, ChunkLogAccumulates) {
  KvStoreState sm;
  paxos::Value v;
  v.kind = paxos::ValueKind::kCommand;
  v.value_id = 99;
  v.coded = true;
  v.chunk_index = 2;
  v.rs_n = 5;
  v.full_size = 30;
  v.payload = bytes("0123456789");
  sm.apply_chunk(v);
  EXPECT_EQ(sm.chunk_count(), 1u);
  EXPECT_EQ(sm.chunk_bytes(), 10u);
  const StoredChunk& c = sm.chunks().at(99);
  EXPECT_EQ(c.chunk_index, 2);
  EXPECT_EQ(c.rs_n, 5);
  EXPECT_EQ(c.full_size, 30u);
}

TEST(KvStoreState, ReconstructFromChunkLogs) {
  // Encode two commands into chunks by hand and distribute them across
  // three follower stores; reconstruct_into must rebuild the KV state.
  ReedSolomon rs(3, 5);
  std::vector<KvStoreState> followers(5);
  std::uint64_t next_id = 1;
  auto replicate = [&](const KvCommand& cmd) {
    auto encoded = cmd.encode();
    auto chunks = rs.encode(encoded);
    for (int i = 0; i < 5; ++i) {
      paxos::Value v;
      v.kind = paxos::ValueKind::kCommand;
      v.value_id = next_id;
      v.coded = true;
      v.chunk_index = i;
      v.rs_n = 5;
      v.full_size = static_cast<std::uint32_t>(encoded.size());
      v.payload = chunks[static_cast<std::size_t>(i)];
      followers[static_cast<std::size_t>(i)].apply_chunk(v);
    }
    ++next_id;
  };
  KvCommand p1;
  p1.op = KvOp::kPut;
  p1.key = "a";
  p1.value = bytes("alpha");
  replicate(p1);
  KvCommand p2;
  p2.op = KvOp::kPut;
  p2.key = "b";
  p2.value = bytes("bravo");
  replicate(p2);

  KvStoreState out;
  std::size_t n = KvStoreState::reconstruct_into(
      {&followers[1], &followers[3], &followers[4]}, 3, out);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out.get("a"), bytes("alpha"));
  EXPECT_EQ(out.get("b"), bytes("bravo"));
}

TEST(KvStoreState, ReconstructNeedsMChunkLogs) {
  KvStoreState a, b, out;
  EXPECT_THROW(KvStoreState::reconstruct_into({&a, &b}, 3, out),
               std::invalid_argument);
}

TEST(KvStoreState, ReconstructSkipsIncompleteValues) {
  ReedSolomon rs(3, 5);
  std::vector<KvStoreState> followers(3);
  KvCommand p;
  p.op = KvOp::kPut;
  p.key = "x";
  p.value = bytes("full");
  auto encoded = p.encode();
  auto chunks = rs.encode(encoded);
  // Only two followers hold chunks of value 7: not reconstructible.
  for (int i = 0; i < 2; ++i) {
    paxos::Value v;
    v.kind = paxos::ValueKind::kCommand;
    v.value_id = 7;
    v.coded = true;
    v.chunk_index = i;
    v.rs_n = 5;
    v.full_size = static_cast<std::uint32_t>(encoded.size());
    v.payload = chunks[static_cast<std::size_t>(i)];
    followers[static_cast<std::size_t>(i)].apply_chunk(v);
  }
  KvStoreState out;
  std::size_t n = KvStoreState::reconstruct_into(
      {&followers[0], &followers[1], &followers[2]}, 3, out);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(out.keys(), 0u);
}

}  // namespace
}  // namespace jupiter::storage
