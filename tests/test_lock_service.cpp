#include "lock/lock_service.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace jupiter::lock {
namespace {

LockCommand open_session(const std::string& s, std::int64_t now,
                         std::int64_t lease = 60) {
  LockCommand c;
  c.op = LockOp::kOpenSession;
  c.session = s;
  c.now = now;
  c.lease = lease;
  return c;
}

LockCommand acquire(const std::string& s, const std::string& path,
                    std::int64_t now) {
  LockCommand c;
  c.op = LockOp::kAcquire;
  c.session = s;
  c.path = path;
  c.now = now;
  return c;
}

LockResponse run(LockServiceState& sm, const LockCommand& c) {
  return LockResponse::decode(sm.apply(c.encode()));
}

TEST(LockCommand, EncodeDecodeRoundTrip) {
  LockCommand c;
  c.op = LockOp::kAcquire;
  c.session = "client-7";
  c.path = "/ls/cell/leader";
  c.now = 12345;
  c.lease = 60;
  LockCommand d = LockCommand::decode(c.encode());
  EXPECT_EQ(d.op, c.op);
  EXPECT_EQ(d.session, c.session);
  EXPECT_EQ(d.path, c.path);
  EXPECT_EQ(d.now, c.now);
  EXPECT_EQ(d.lease, c.lease);
}

TEST(LockResponse, EncodeDecodeRoundTrip) {
  LockResponse r;
  r.status = LockStatus::kHeldByOther;
  r.owner = "bob";
  LockResponse d = LockResponse::decode(r.encode());
  EXPECT_EQ(d.status, r.status);
  EXPECT_EQ(d.owner, r.owner);
}

TEST(LockServiceState, AcquireReleaseCycle) {
  LockServiceState sm;
  EXPECT_EQ(run(sm, open_session("a", 0)).status, LockStatus::kOk);
  EXPECT_EQ(run(sm, acquire("a", "/l", 1)).status, LockStatus::kOk);
  EXPECT_EQ(sm.owner_of("/l"), "a");
  EXPECT_EQ(sm.held_locks(), 1u);

  LockCommand rel;
  rel.op = LockOp::kRelease;
  rel.session = "a";
  rel.path = "/l";
  rel.now = 2;
  EXPECT_EQ(run(sm, rel).status, LockStatus::kOk);
  EXPECT_EQ(sm.owner_of("/l"), std::nullopt);
}

TEST(LockServiceState, AcquireWithoutSessionFails) {
  LockServiceState sm;
  EXPECT_EQ(run(sm, acquire("ghost", "/l", 0)).status, LockStatus::kNoSession);
}

TEST(LockServiceState, ContendedAcquireReportsOwner) {
  LockServiceState sm;
  run(sm, open_session("a", 0));
  run(sm, open_session("b", 0));
  EXPECT_EQ(run(sm, acquire("a", "/l", 1)).status, LockStatus::kOk);
  LockResponse r = run(sm, acquire("b", "/l", 2));
  EXPECT_EQ(r.status, LockStatus::kHeldByOther);
  EXPECT_EQ(r.owner, "a");
  // Re-acquire by owner is idempotent success.
  EXPECT_EQ(run(sm, acquire("a", "/l", 3)).status, LockStatus::kOk);
}

TEST(LockServiceState, ReleaseByNonOwnerFails) {
  LockServiceState sm;
  run(sm, open_session("a", 0));
  run(sm, open_session("b", 0));
  run(sm, acquire("a", "/l", 1));
  LockCommand rel;
  rel.op = LockOp::kRelease;
  rel.session = "b";
  rel.path = "/l";
  rel.now = 2;
  EXPECT_EQ(run(sm, rel).status, LockStatus::kNotHeld);
  EXPECT_EQ(sm.owner_of("/l"), "a");
}

TEST(LockServiceState, SessionExpiryReleasesLocks) {
  LockServiceState sm;
  run(sm, open_session("a", 0, 60));
  run(sm, acquire("a", "/l", 1));
  // At now=61 the session (expires at 60) is gone and so is the lock.
  run(sm, open_session("b", 61));
  EXPECT_EQ(sm.open_sessions(), 1u);
  EXPECT_EQ(run(sm, acquire("b", "/l", 62)).status, LockStatus::kOk);
  EXPECT_EQ(sm.owner_of("/l"), "b");
}

TEST(LockServiceState, KeepAliveExtendsLease) {
  LockServiceState sm;
  run(sm, open_session("a", 0, 60));
  run(sm, acquire("a", "/l", 1));
  LockCommand ka;
  ka.op = LockOp::kKeepAlive;
  ka.session = "a";
  ka.now = 50;
  ka.lease = 60;
  EXPECT_EQ(run(sm, ka).status, LockStatus::kOk);
  // At 100 the session would have died without the keep-alive.
  EXPECT_EQ(run(sm, acquire("a", "/l", 100)).status, LockStatus::kOk);
  // Keep-alive for an unknown session reports it.
  ka.session = "ghost";
  EXPECT_EQ(run(sm, ka).status, LockStatus::kNoSession);
}

TEST(LockServiceState, CloseSessionReleasesEverything) {
  LockServiceState sm;
  run(sm, open_session("a", 0));
  run(sm, acquire("a", "/x", 1));
  run(sm, acquire("a", "/y", 1));
  LockCommand close;
  close.op = LockOp::kCloseSession;
  close.session = "a";
  close.now = 2;
  run(sm, close);
  EXPECT_EQ(sm.open_sessions(), 0u);
  EXPECT_EQ(sm.held_locks(), 0u);
}

TEST(LockServiceState, GetOwnerQueries) {
  LockServiceState sm;
  run(sm, open_session("a", 0));
  run(sm, acquire("a", "/l", 1));
  LockCommand get;
  get.op = LockOp::kGetOwner;
  get.path = "/l";
  get.now = 2;
  LockResponse r = run(sm, get);
  EXPECT_EQ(r.status, LockStatus::kOk);
  EXPECT_EQ(r.owner, "a");
  get.path = "/missing";
  EXPECT_EQ(run(sm, get).status, LockStatus::kNotHeld);
}

// Safety invariant sweep: under arbitrary interleavings, a lock never has
// two owners and owners always hold live sessions.
TEST(LockServiceState, MutualExclusionInvariant) {
  LockServiceState sm;
  std::vector<std::string> clients = {"a", "b", "c"};
  std::int64_t now = 0;
  Rng rng(5);
  for (const auto& c : clients) run(sm, open_session(c, now, 120));
  for (int step = 0; step < 2000; ++step) {
    now += static_cast<std::int64_t>(rng.below(30));
    const auto& who = clients[rng.below(3)];
    std::string path = "/lock" + std::to_string(rng.below(4));
    if (rng.bernoulli(0.4)) {
      run(sm, acquire(who, path, now));
    } else if (rng.bernoulli(0.5)) {
      LockCommand rel;
      rel.op = LockOp::kRelease;
      rel.session = who;
      rel.path = path;
      rel.now = now;
      run(sm, rel);
    } else {
      LockCommand ka;
      ka.op = LockOp::kKeepAlive;
      ka.session = who;
      ka.now = now;
      ka.lease = 120;
      run(sm, ka);
    }
    // Invariant: every held lock's owner session is open.
    for (const auto& path2 : {"/lock0", "/lock1", "/lock2", "/lock3"}) {
      auto owner = sm.owner_of(path2);
      if (owner) {
        LockCommand get;
        get.op = LockOp::kGetOwner;
        get.path = path2;
        get.now = now;
        LockResponse r = run(sm, get);
        // GetOwner runs expiry first; an owner it reports must be live.
        if (r.status == LockStatus::kOk) {
          EXPECT_FALSE(r.owner.empty());
        }
      }
    }
  }
  EXPECT_LE(sm.held_locks(), 4u);
}

struct LockClientFixture : ::testing::Test {
  LockClientFixture()
      : net(sim, 17),
        group(sim, net, paxos::Replica::Options{},
              [this](paxos::NodeId id) {
                auto sm = std::make_unique<LockServiceState>();
                sms[id] = sm.get();
                return sm;
              },
              888) {
    group.bootstrap(5);
    sim.run_until(sim.now() + 200);
  }

  Simulator sim;
  paxos::SimNetwork net;
  std::map<paxos::NodeId, LockServiceState*> sms;
  paxos::Group group;
};

TEST_F(LockClientFixture, EndToEndAcquireViaConsensus) {
  // Leases far beyond the test horizon; lease expiry has its own tests.
  LockClient alice(group, sim, "alice", 7200);
  LockClient bob(group, sim, "bob", 7200);
  alice.open_session();
  bob.open_session();
  sim.run_until(sim.now() + 120);

  LockStatus alice_status = LockStatus::kExpired;
  alice.acquire("/ls/leader", [&](LockResponse r) { alice_status = r.status; });
  sim.run_until(sim.now() + 120);
  EXPECT_EQ(alice_status, LockStatus::kOk);

  LockStatus bob_status = LockStatus::kOk;
  std::string owner;
  bob.acquire("/ls/leader", [&](LockResponse r) {
    bob_status = r.status;
    owner = r.owner;
  });
  sim.run_until(sim.now() + 120);
  EXPECT_EQ(bob_status, LockStatus::kHeldByOther);
  EXPECT_EQ(owner, "alice");

  // Every replica that applied the command agrees on the owner.
  paxos::NodeId lead = group.leader_id();
  ASSERT_GE(lead, 0);
  EXPECT_EQ(sms[lead]->owner_of("/ls/leader"), "alice");
}

TEST_F(LockClientFixture, AcquireBlockingRetriesUntilRelease) {
  LockClient alice(group, sim, "alice", 7200);
  LockClient bob(group, sim, "bob", 7200);
  alice.open_session();
  bob.open_session();
  sim.run_until(sim.now() + 120);
  alice.acquire("/l", nullptr);
  sim.run_until(sim.now() + 120);

  LockStatus bob_final = LockStatus::kExpired;
  bob.acquire_blocking("/l", [&](LockResponse r) { bob_final = r.status; },
                       1200);
  sim.run_until(sim.now() + 120);
  alice.release("/l", nullptr);
  sim.run_until(sim.now() + 600);
  EXPECT_EQ(bob_final, LockStatus::kOk);
}

}  // namespace
}  // namespace jupiter::lock
