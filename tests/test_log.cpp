#include "util/log.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

struct LogLevelGuard {
  LogLevel saved = log_level();
  ~LogLevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarning);
  EXPECT_LT(LogLevel::kWarning, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST(Log, SuppressedBelowThresholdDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Streams still format and discard safely.
  JLOG(kDebug) << "invisible " << 42;
  JLOG(kError) << "also invisible at kOff " << 3.14;
  log_line(LogLevel::kWarning, "direct call, suppressed");
}

TEST(Log, MacroBuildsCompositeMessages) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // exercise the stream path quietly
  int x = 7;
  JLOG(kInfo) << "x=" << x << " y=" << 2.5 << " s=" << std::string("abc");
}

}  // namespace
}  // namespace jupiter
