#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/simulator.hpp"

namespace jupiter {
namespace {

struct LogLevelGuard {
  LogLevel saved = log_level();
  ~LogLevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarning);
  EXPECT_LT(LogLevel::kWarning, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST(Log, SuppressedBelowThresholdDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Streams still format and discard safely.
  JLOG(kDebug) << "invisible " << 42;
  JLOG(kError) << "also invisible at kOff " << 3.14;
  log_line(LogLevel::kWarning, "direct call, suppressed");
}

TEST(Log, MacroBuildsCompositeMessages) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // exercise the stream path quietly
  int x = 7;
  JLOG(kInfo) << "x=" << x << " y=" << 2.5 << " s=" << std::string("abc");
}

TEST(Log, ParsesLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);  // case-insensitive
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("debug "), std::nullopt);
}

TEST(Log, EnvVarSetsThreshold) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("JUPITER_LOG", "debug", 1), 0);
  EXPECT_EQ(init_log_level_from_env(), LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  // Unparsable values are ignored, keeping the current threshold.
  set_log_level(LogLevel::kWarning);
  ASSERT_EQ(setenv("JUPITER_LOG", "shouting", 1), 0);
  EXPECT_EQ(init_log_level_from_env(), std::nullopt);
  EXPECT_EQ(log_level(), LogLevel::kWarning);

  // Absent variable: no-op.
  ASSERT_EQ(unsetenv("JUPITER_LOG"), 0);
  EXPECT_EQ(init_log_level_from_env(), std::nullopt);
  EXPECT_EQ(log_level(), LogLevel::kWarning);
}

TEST(Log, ExplicitSetBeatsEnvironment) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("JUPITER_LOG", "debug", 1), 0);
  set_log_level(LogLevel::kError);  // marks the threshold as explicit
  // The lazy first-use initializer must not override the explicit choice
  // (log_level() runs it when nothing claimed initialization yet).
  EXPECT_EQ(log_level(), LogLevel::kError);
  ASSERT_EQ(unsetenv("JUPITER_LOG"), 0);
}

TEST(Log, SimulatorPrefixesLinesWithSimTime) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  Simulator sim;
  sim.schedule_at(SimTime(3723), [] {});
  sim.run_until(SimTime(3723));

  ::testing::internal::CaptureStderr();
  JLOG(kInfo) << "prefixed message";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find(sim.now().str()), std::string::npos)
      << "missing sim-time prefix in: " << out;
  EXPECT_NE(out.find("| prefixed message"), std::string::npos) << out;
}

TEST(Log, FirstSimulatorOwnsTheLogClock) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  Simulator first;
  first.schedule_at(SimTime(100), [] {});
  first.run_until(SimTime(100));
  {
    Simulator second;  // must not steal the prefix, nor clear it on exit
    second.schedule_at(SimTime(999), [] {});
    second.run_until(SimTime(999));
    ::testing::internal::CaptureStderr();
    JLOG(kInfo) << "during";
    std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find(first.now().str()), std::string::npos) << out;
    EXPECT_EQ(out.find(second.now().str()), std::string::npos) << out;
  }
  ::testing::internal::CaptureStderr();
  JLOG(kInfo) << "after";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find(first.now().str()), std::string::npos) << out;
}

TEST(Log, NoPrefixAfterLastSimulatorDies) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  { Simulator sim; }
  ::testing::internal::CaptureStderr();
  JLOG(kInfo) << "bare line";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find(" | "), std::string::npos) << out;
}

}  // namespace
}  // namespace jupiter
