#include <gtest/gtest.h>

#include "util/log.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Tests exercise fallback/error paths on purpose; keep stderr clean.
  jupiter::set_log_level(jupiter::LogLevel::kError);
  return RUN_ALL_TESTS();
}
