#include "core/market_state.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

TEST(MarketState, SnapshotReflectsTraceAndAge) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(10 * kMinute), PriceTick(120));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));

  MarketSnapshot snap =
      snapshot_at(book, InstanceKind::kM1Small, {0}, SimTime(25 * kMinute));
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].zone, 0);
  EXPECT_EQ(snap[0].price.value(), 120);
  EXPECT_EQ(snap[0].age_minutes, 15);
  EXPECT_EQ(snap[0].on_demand.money(),
            on_demand_price_zone(0, InstanceKind::kM1Small));
}

TEST(MarketState, AgeTruncatesToWholeMinutes) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  MarketSnapshot snap =
      snapshot_at(book, InstanceKind::kM1Small, {0}, SimTime(119));
  EXPECT_EQ(snap[0].age_minutes, 1);
}

TEST(MarketState, SnapshotPreservesZoneOrder) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  TraceBook book;
  book.set(7, InstanceKind::kM1Small, tr);
  book.set(2, InstanceKind::kM1Small, tr);
  MarketSnapshot snap =
      snapshot_at(book, InstanceKind::kM1Small, {7, 2}, SimTime(0));
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].zone, 7);
  EXPECT_EQ(snap[1].zone, 2);
}

TEST(MarketState, MissingTraceThrows) {
  TraceBook book;
  EXPECT_THROW(snapshot_at(book, InstanceKind::kM1Small, {0}, SimTime(0)),
               std::out_of_range);
}

TEST(MarketState, ZoneBidEquality) {
  EXPECT_EQ((ZoneBid{1, PriceTick(5)}), (ZoneBid{1, PriceTick(5)}));
  EXPECT_FALSE((ZoneBid{1, PriceTick(5)}) == (ZoneBid{2, PriceTick(5)}));
  EXPECT_FALSE((ZoneBid{1, PriceTick(5)}) == (ZoneBid{1, PriceTick(6)}));
}

}  // namespace
}  // namespace jupiter
