// Degenerate-input behaviour across the model stack: single-price
// histories, live prices outside the trained range, terminate-while-pending
// instances.
#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "core/failure_model.hpp"

namespace jupiter {
namespace {

TEST(ModelEdge, SinglePriceHistoryIsAbsorbing) {
  // A zone whose price never changed: the estimated chain has one
  // absorbing state, and any bid at/above it is estimated perfectly safe.
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  ZoneFailureModel model = ZoneFailureModel::train(tr, PriceTick(440));
  EXPECT_EQ(model.chain().state_count(), 1);
  EXPECT_TRUE(model.chain().is_absorbing(0));

  MarketZoneState st;
  st.zone = 0;
  st.price = PriceTick(100);
  st.age_minutes = 500;
  st.on_demand = PriceTick(440);
  EXPECT_NEAR(model.estimate_fp(st, 60, PriceTick(100)), 0.01, 1e-12);
  auto bid = model.min_bid_for_fp(st, 60, 0.02);
  ASSERT_TRUE(bid.has_value());
  EXPECT_EQ(*bid, PriceTick(100));
}

TEST(ModelEdge, LivePriceAboveTrainedRange) {
  // The market moved above everything in training: nearest_state maps to
  // the top state; a bid at the live price is at least as safe as the top
  // state's estimate, and a bid below the live price is hopeless.
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(kHour), PriceTick(120));
  tr.append(SimTime(2 * kHour), PriceTick(100));
  ZoneFailureModel model = ZoneFailureModel::train(tr, PriceTick(440));

  MarketZoneState st;
  st.zone = 0;
  st.price = PriceTick(300);  // never seen
  st.age_minutes = 0;
  st.on_demand = PriceTick(440);
  EXPECT_DOUBLE_EQ(model.estimate_fp(st, 60, PriceTick(250)), 1.0);
  double fp = model.estimate_fp(st, 60, PriceTick(300));
  EXPECT_LT(fp, 1.0);
  // min bid can never be below the live price.
  auto bid = model.min_bid_for_fp(st, 60, 0.9);
  if (bid) {
    EXPECT_GE(*bid, st.price);
  }
}

TEST(ModelEdge, LivePriceBelowTrainedRange) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(kHour), PriceTick(120));
  tr.append(SimTime(2 * kHour), PriceTick(100));
  ZoneFailureModel model = ZoneFailureModel::train(tr, PriceTick(440));
  MarketZoneState st;
  st.zone = 0;
  st.price = PriceTick(50);
  st.age_minutes = 0;
  st.on_demand = PriceTick(440);
  // Bids between the live price and the lowest state are all-risk in the
  // model (every state it can occupy is above them)...
  EXPECT_DOUBLE_EQ(model.out_of_bid_probability(st, 60, PriceTick(60)), 1.0);
  // ...but a bid covering the trained range is fine.
  EXPECT_LT(model.estimate_fp(st, 60, PriceTick(120)), 0.05);
}

TEST(ModelEdge, TerminatePendingInstance) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  Simulator sim;
  CloudProvider provider(sim, book, 9);
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(200));
  ASSERT_NE(id, 0u);
  sim.run_until(SimTime(30));  // still pending (startup >= 200 s)
  EXPECT_EQ(provider.record(id).state, InstanceState::kPending);
  provider.terminate(id);
  EXPECT_EQ(provider.record(id).state, InstanceState::kTerminated);
  // One partial hour charged (user termination).
  EXPECT_EQ(provider.total_charges(), PriceTick(100).money());
  // The startup-completion event must not resurrect it.
  sim.run_until(SimTime(800));
  EXPECT_EQ(provider.record(id).state, InstanceState::kTerminated);
  EXPECT_FALSE(provider.is_up(id));
}

TEST(ModelEdge, ZeroAgeVersusStaleAgeDiffer) {
  // Age conditioning has teeth: a freshly-set price and a long-held price
  // produce different first-passage estimates on a non-memoryless chain.
  SemiMarkovChain chain({PriceTick(100), PriceTick(200)});
  chain.add_transition(0, 1, 2, 0.5);
  chain.add_transition(0, 1, 120, 0.5);
  chain.add_transition(1, 0, 5, 1.0);
  chain.normalize_rows();
  ZoneFailureModel model(chain, PriceTick(440));
  MarketZoneState fresh;
  fresh.zone = 0;
  fresh.price = PriceTick(100);
  fresh.age_minutes = 0;
  fresh.on_demand = PriceTick(440);
  MarketZoneState stale = fresh;
  stale.age_minutes = 30;  // survived the 2-minute mode: long regime
  double fp_fresh = model.estimate_fp(fresh, 20, PriceTick(100));
  double fp_stale = model.estimate_fp(stale, 20, PriceTick(100));
  // Fresh: 50% chance of the 2-minute sojourn firing inside the window.
  EXPECT_GT(fp_fresh, 0.4);
  // Stale: conditioned into the 120-minute regime; jump is ~90 min away.
  EXPECT_LT(fp_stale, 0.1);
}

}  // namespace
}  // namespace jupiter
