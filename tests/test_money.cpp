#include "util/money.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace jupiter {
namespace {

TEST(Money, DefaultIsZero) {
  Money m;
  EXPECT_EQ(m.micros(), 0);
  EXPECT_TRUE(m.is_zero());
}

TEST(Money, FromDollarsRoundTrips) {
  EXPECT_EQ(Money::from_dollars(0.044).micros(), 44'000);
  EXPECT_EQ(Money::from_dollars(1.0).micros(), 1'000'000);
  EXPECT_EQ(Money::from_dollars(-0.5).micros(), -500'000);
  EXPECT_DOUBLE_EQ(Money::from_dollars(0.0071).dollars(), 0.0071);
}

TEST(Money, Arithmetic) {
  Money a = Money::from_dollars(1.50);
  Money b = Money::from_dollars(0.25);
  EXPECT_EQ((a + b).micros(), 1'750'000);
  EXPECT_EQ((a - b).micros(), 1'250'000);
  EXPECT_EQ((a * 3).micros(), 4'500'000);
  EXPECT_EQ((3 * a).micros(), 4'500'000);
  EXPECT_EQ((a / 3).micros(), 500'000);
  EXPECT_EQ((-a).micros(), -1'500'000);
}

TEST(Money, CompoundAssignment) {
  Money a = Money::from_dollars(1.0);
  a += Money::from_dollars(0.5);
  EXPECT_EQ(a.micros(), 1'500'000);
  a -= Money::from_dollars(2.0);
  EXPECT_EQ(a.micros(), -500'000);
}

TEST(Money, FromDollarsRejectsNonFinite) {
  // llround on NaN/inf is implementation-defined; a bad upstream
  // computation must fail loudly, not become a platform-dependent charge.
  EXPECT_THROW(Money::from_dollars(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(Money::from_dollars(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(Money::from_dollars(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_EQ(Money::from_dollars(0.25).micros(), 250'000);
}

TEST(Money, NegationSaturatesAtInt64Min) {
  // -INT64_MIN would be signed overflow; the negation saturates instead.
  Money lowest{std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ((-lowest).micros(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ((-Money(-5)).micros(), 5);
  // str() on the sentinel must not overflow either.
  EXPECT_FALSE(lowest.str().empty());
}

TEST(Money, Comparisons) {
  EXPECT_LT(Money::from_dollars(0.044), Money::from_dollars(0.061));
  EXPECT_EQ(Money::from_dollars(0.1), Money(100'000));
  EXPECT_GE(Money::from_dollars(0.2), Money::from_dollars(0.2));
}

TEST(Money, StringRendering) {
  EXPECT_EQ(Money::from_dollars(0.0071).str(), "$0.0071");
  EXPECT_EQ(Money::from_dollars(1293.60).str(), "$1293.6000");
  EXPECT_EQ(Money::from_dollars(-0.5).str(), "-$0.5000");
  EXPECT_EQ(Money(0).str(), "$0.0000");
  // Sub-tick amounts round in rendering only.
  EXPECT_EQ(Money(49).str(), "$0.0000");
  EXPECT_EQ(Money(51).str(), "$0.0001");
}

TEST(Money, StreamOperator) {
  std::ostringstream os;
  os << Money::from_dollars(0.044);
  EXPECT_EQ(os.str(), "$0.0440");
}

TEST(PriceTick, ConversionRoundTrip) {
  PriceTick t = PriceTick::from_money(Money::from_dollars(0.0071));
  EXPECT_EQ(t.value(), 71);
  EXPECT_EQ(t.money().micros(), 7'100);
  EXPECT_DOUBLE_EQ(t.dollars(), 0.0071);
}

TEST(PriceTick, RoundsToNearestTick) {
  EXPECT_EQ(PriceTick::from_money(Money(149)).value(), 1);
  EXPECT_EQ(PriceTick::from_money(Money(151)).value(), 2);
  EXPECT_EQ(PriceTick::from_money(Money(150)).value(), 2);  // half away
  EXPECT_EQ(PriceTick::from_money(Money(-150)).value(), -2);
}

TEST(PriceTick, Arithmetic) {
  PriceTick t(100);
  EXPECT_EQ((t + 5).value(), 105);
  EXPECT_EQ((t - 5).value(), 95);
  PriceTick u = t;
  ++u;
  EXPECT_EQ(u.value(), 101);
  EXPECT_LT(t, u);
}

TEST(PriceTick, MicrosPerTickIsTenthOfACent) {
  EXPECT_EQ(kMicrosPerTick, 100);
  EXPECT_EQ(PriceTick(1).money().micros(), 100);
}

}  // namespace
}  // namespace jupiter
