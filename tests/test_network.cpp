#include "paxos/network.hpp"

#include <gtest/gtest.h>

namespace jupiter::paxos {
namespace {

Message ping(NodeId from) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.from = from;
  return m;
}

TEST(SimNetwork, DeliversWithinLatencyBounds) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.min_latency = 2;
  opts.max_latency = 5;
  SimNetwork net(sim, 1, opts);
  std::vector<std::int64_t> arrivals;
  net.attach(1, [&](const Message&) { arrivals.push_back(sim.now().seconds()); });
  for (int i = 0; i < 50; ++i) net.send(1, ping(0));
  sim.run_until(SimTime(100));
  ASSERT_EQ(arrivals.size(), 50u);
  for (auto t : arrivals) {
    EXPECT_GE(t, 2);
    EXPECT_LE(t, 5);
  }
}

TEST(SimNetwork, DownReceiverDropsInFlight) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.min_latency = 5;
  opts.max_latency = 5;
  SimNetwork net(sim, 2, opts);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.send(1, ping(0));
  // Receiver crashes while the message is in flight.
  sim.schedule_at(SimTime(2), [&] { net.set_up(1, false); });
  sim.run_until(SimTime(100));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 0u);
}

TEST(SimNetwork, DownSenderCannotSend) {
  Simulator sim;
  SimNetwork net(sim, 3);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.set_up(0, false);
  net.send(1, ping(0));
  sim.run_until(SimTime(100));
  EXPECT_EQ(received, 0);
}

TEST(SimNetwork, DropRateLosesRoughlyThatFraction) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.drop_rate = 0.3;
  SimNetwork net(sim, 4, opts);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) net.send(1, ping(0));
  sim.run_until(SimTime(100));
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.03);
}

TEST(SimNetwork, ValueBytesAccounting) {
  Simulator sim;
  SimNetwork net(sim, 5);
  net.attach(1, [](const Message&) {});
  Message m = ping(0);
  m.value.payload.assign(100, 0xFF);
  PromiseInfo p;
  p.value.payload.assign(23, 0x01);
  m.promises.push_back(p);
  net.send(1, m);
  EXPECT_EQ(net.value_bytes_sent(), 123u);
}

TEST(SimNetwork, DetachStopsDelivery) {
  Simulator sim;
  SimNetwork net(sim, 6);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.send(1, ping(0));
  sim.run_until(SimTime(10));
  EXPECT_EQ(received, 1);
  net.detach(1);
  net.send(1, ping(0));
  sim.run_until(SimTime(20));
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, NodesDefaultUp) {
  Simulator sim;
  SimNetwork net(sim, 7);
  EXPECT_TRUE(net.is_up(42));
  net.set_up(42, false);
  EXPECT_FALSE(net.is_up(42));
  net.set_up(42, true);
  EXPECT_TRUE(net.is_up(42));
}

}  // namespace
}  // namespace jupiter::paxos
