#include "paxos/network.hpp"

#include <gtest/gtest.h>

namespace jupiter::paxos {
namespace {

Message ping(NodeId from) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.from = from;
  return m;
}

TEST(SimNetwork, DeliversWithinLatencyBounds) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.min_latency = 2;
  opts.max_latency = 5;
  SimNetwork net(sim, 1, opts);
  std::vector<std::int64_t> arrivals;
  net.attach(1, [&](const Message&) { arrivals.push_back(sim.now().seconds()); });
  for (int i = 0; i < 50; ++i) net.send(1, ping(0));
  sim.run_until(SimTime(100));
  ASSERT_EQ(arrivals.size(), 50u);
  for (auto t : arrivals) {
    EXPECT_GE(t, 2);
    EXPECT_LE(t, 5);
  }
}

TEST(SimNetwork, DownReceiverDropsInFlight) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.min_latency = 5;
  opts.max_latency = 5;
  SimNetwork net(sim, 2, opts);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.send(1, ping(0));
  // Receiver crashes while the message is in flight.
  sim.schedule_at(SimTime(2), [&] { net.set_up(1, false); });
  sim.run_until(SimTime(100));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 0u);
}

TEST(SimNetwork, DownSenderCannotSend) {
  Simulator sim;
  SimNetwork net(sim, 3);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.set_up(0, false);
  net.send(1, ping(0));
  sim.run_until(SimTime(100));
  EXPECT_EQ(received, 0);
}

TEST(SimNetwork, DropRateLosesRoughlyThatFraction) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.drop_rate = 0.3;
  SimNetwork net(sim, 4, opts);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) net.send(1, ping(0));
  sim.run_until(SimTime(100));
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.03);
}

TEST(SimNetwork, ValueBytesAccounting) {
  Simulator sim;
  SimNetwork net(sim, 5);
  net.attach(1, [](const Message&) {});
  Message m = ping(0);
  m.value.payload.assign(100, 0xFF);
  PromiseInfo p;
  p.value.payload.assign(23, 0x01);
  m.promises.push_back(p);
  net.send(1, m);
  EXPECT_EQ(net.value_bytes_sent(), 123u);
}

TEST(SimNetwork, DetachStopsDelivery) {
  Simulator sim;
  SimNetwork net(sim, 6);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.send(1, ping(0));
  sim.run_until(SimTime(10));
  EXPECT_EQ(received, 1);
  net.detach(1);
  net.send(1, ping(0));
  sim.run_until(SimTime(20));
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, NodesDefaultUp) {
  Simulator sim;
  SimNetwork net(sim, 7);
  EXPECT_TRUE(net.is_up(42));
  net.set_up(42, false);
  EXPECT_FALSE(net.is_up(42));
  net.set_up(42, true);
  EXPECT_TRUE(net.is_up(42));
}

// ------------------------------------------------------ partition semantics

TEST(SimNetwork, AsymmetricCutDeliversOneDirectionOnly) {
  Simulator sim;
  SimNetwork net(sim, 8);
  int to_zero = 0, to_one = 0;
  net.attach(0, [&](const Message&) { ++to_zero; });
  net.attach(1, [&](const Message&) { ++to_one; });
  net.cut_link(0, 1);  // 0 -> 1 severed; 1 -> 0 still up
  net.send(1, ping(0));
  net.send(0, ping(1));
  sim.run_until(SimTime(50));
  EXPECT_EQ(to_one, 0);
  EXPECT_EQ(to_zero, 1);
  EXPECT_TRUE(net.link_cut(0, 1));
  EXPECT_FALSE(net.link_cut(1, 0));
}

TEST(SimNetwork, HealingRestoresDelivery) {
  Simulator sim;
  SimNetwork net(sim, 9);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.cut_pair(0, 1);
  net.send(1, ping(0));
  sim.run_until(SimTime(50));
  EXPECT_EQ(received, 0);
  net.heal_pair(0, 1);
  net.send(1, ping(0));
  sim.run_until(SimTime(100));
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, PairCutBlocksBothDirections) {
  Simulator sim;
  SimNetwork net(sim, 10);
  int delivered = 0;
  net.attach(0, [&](const Message&) { ++delivered; });
  net.attach(1, [&](const Message&) { ++delivered; });
  net.cut_pair(0, 1);
  net.send(1, ping(0));
  net.send(0, ping(1));
  sim.run_until(SimTime(50));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_dropped(), 2u);
}

TEST(SimNetwork, CutLinkDropsMessagesAlreadyInFlight) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.min_latency = 5;
  opts.max_latency = 5;
  SimNetwork net(sim, 11, opts);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.send(1, ping(0));
  // The link is severed while the message is on the wire.
  sim.schedule_at(SimTime(2), [&] { net.cut_link(0, 1); });
  sim.run_until(SimTime(50));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(SimNetwork, DownNodeNeitherSendsNorReceives) {
  Simulator sim;
  SimNetwork net(sim, 12);
  int received = 0;
  net.attach(0, [&](const Message&) { ++received; });
  net.attach(1, [&](const Message&) { ++received; });
  net.set_up(1, false);
  net.send(0, ping(1));  // down sender
  net.send(1, ping(0));  // down receiver
  sim.run_until(SimTime(50));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.messages_dropped(), 2u);
  EXPECT_EQ(net.messages_delivered(), 0u);
}

// ------------------------------------------------------- drop accounting

TEST(SimNetwork, DroppedPlusDeliveredAccountsForEverySend) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.drop_rate = 0.4;
  SimNetwork net(sim, 13, opts);
  net.attach(1, [](const Message&) {});
  const int n = 2000;
  for (int i = 0; i < n; ++i) net.send(1, ping(0));
  sim.run_until(SimTime(100));
  EXPECT_EQ(net.messages_sent(), static_cast<std::uint64_t>(n));
  // Without duplication every send either arrives or is dropped.
  EXPECT_EQ(net.messages_delivered() + net.messages_dropped(),
            static_cast<std::uint64_t>(n));
  EXPECT_GT(net.messages_dropped(), 0u);
}

// ------------------------------------------------------------ fault hook

TEST(SimNetwork, FaultHookCanDuplicateMessages) {
  Simulator sim;
  SimNetwork net(sim, 14);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.set_fault_hook([](NodeId, NodeId, const Message&) {
    SimNetwork::FaultAction act;
    act.duplicates = 2;
    return act;
  });
  net.send(1, ping(0));
  sim.run_until(SimTime(50));
  EXPECT_EQ(received, 3);  // original + 2 copies
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 3u);
}

TEST(SimNetwork, FaultHookExtraLatencyDelaysDelivery) {
  Simulator sim;
  SimNetwork::Options opts;
  opts.min_latency = 1;
  opts.max_latency = 1;
  SimNetwork net(sim, 15, opts);
  std::vector<std::int64_t> arrivals;
  net.attach(1, [&](const Message&) { arrivals.push_back(sim.now().seconds()); });
  net.set_fault_hook([](NodeId, NodeId, const Message&) {
    SimNetwork::FaultAction act;
    act.extra_latency = 30;
    return act;
  });
  net.send(1, ping(0));
  sim.run_until(SimTime(100));
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 31);
  // Clearing the hook restores base latency.
  net.set_fault_hook(nullptr);
  net.send(1, ping(0));
  sim.run_until(SimTime(200));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1], 101);
}

TEST(SimNetwork, FaultHookCanDropDeterministically) {
  Simulator sim;
  SimNetwork net(sim, 16);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.set_fault_hook([](NodeId, NodeId to, const Message&) {
    SimNetwork::FaultAction act;
    act.drop = (to == 1);
    return act;
  });
  net.send(1, ping(0));
  net.send(2, ping(0));  // unaffected destination (no handler, still counts)
  sim.run_until(SimTime(50));
  EXPECT_EQ(received, 0);
  EXPECT_GE(net.messages_dropped(), 1u);
}

}  // namespace
}  // namespace jupiter::paxos
