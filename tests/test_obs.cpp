#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/strategies.hpp"
#include "replay/replay_engine.hpp"
#include "replay/workloads.hpp"

namespace jupiter {
namespace {

using obs::Labels;
using obs::MetricKind;
using obs::MetricsSnapshot;
using obs::Registry;
using obs::Visibility;

// ---------------------------------------------------------------- registry

TEST(MetricKeyTest, SortsLabelsAndRendersCanonically) {
  EXPECT_EQ(obs::metric_key("x", {}), "x");
  EXPECT_EQ(obs::metric_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  // Label order never matters: both spellings name one metric instance.
  Registry reg;
  reg.counter("hits", {{"zone", "3"}, {"kind", "spot"}}).inc();
  reg.counter("hits", {{"kind", "spot"}, {"zone", "3"}}).inc(2);
  EXPECT_EQ(reg.snapshot().counter("hits{kind=spot,zone=3}"), 3u);
}

TEST(RegistryTest, EnumerationIsSorted) {
  Registry reg;
  reg.counter("zeta").inc();
  reg.gauge("alpha").set(1.0);
  reg.counter("mid", {{"l", "1"}}).inc();
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.rows.size(), 3u);
  EXPECT_EQ(snap.rows[0].key, "alpha");
  EXPECT_EQ(snap.rows[1].key, "mid{l=1}");
  EXPECT_EQ(snap.rows[2].key, "zeta");
}

TEST(RegistryTest, KindCollisionThrows) {
  Registry reg;
  reg.counter("x").inc();
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", 0, 1, 4), std::invalid_argument);
  // Same name, same kind: returns the same instance.
  reg.counter("x").inc();
  EXPECT_EQ(reg.snapshot().counter("x"), 2u);
}

TEST(RegistryTest, HistogramCarriesMomentsAndBins) {
  Registry reg;
  auto& h = reg.histogram("lat", 0.0, 10.0, 10);
  h.observe(1.5);
  h.observe(2.5);
  h.observe(9.5);
  MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot::Row* row = snap.find("lat");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, MetricKind::kHistogram);
  EXPECT_EQ(row->count, 3u);
  EXPECT_DOUBLE_EQ(row->sum, 13.5);
  EXPECT_DOUBLE_EQ(row->min, 1.5);
  EXPECT_DOUBLE_EQ(row->max, 9.5);
  ASSERT_EQ(row->bins.size(), 10u);
  EXPECT_EQ(row->bins[1], 1u);
  EXPECT_EQ(row->bins[2], 1u);
  EXPECT_EQ(row->bins[9], 1u);
}

TEST(RegistryTest, VolatileMetricsExcludedFromSnapshots) {
  Registry reg;
  reg.counter("det").inc();
  reg.histogram("wall_ns", 0, 1e9, 8, {}, Visibility::kVolatile).observe(5e5);
  MetricsSnapshot def = reg.snapshot();
  EXPECT_NE(def.find("det"), nullptr);
  EXPECT_EQ(def.find("wall_ns"), nullptr);
  EXPECT_EQ(def.to_csv().find("wall_ns"), std::string::npos);
  // Explicit opt-in sees them.
  MetricsSnapshot all = reg.snapshot(/*include_volatile=*/true);
  EXPECT_NE(all.find("wall_ns"), nullptr);
}

TEST(RegistryTest, SnapshotDiff) {
  Registry reg;
  reg.counter("c").inc(10);
  reg.gauge("g").set(1.0);
  MetricsSnapshot before = reg.snapshot();
  reg.counter("c").inc(5);
  reg.gauge("g").set(7.5);
  reg.counter("fresh").inc();
  MetricsSnapshot after = reg.snapshot();
  MetricsSnapshot d = MetricsSnapshot::diff(before, after);
  EXPECT_EQ(d.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(d.gauge("g"), 7.5);  // gauges keep the after value
  EXPECT_EQ(d.counter("fresh"), 1u);
}

TEST(RegistryTest, CsvAndJsonShape) {
  Registry reg;
  reg.counter("a", {{"k", "v"}}).inc(3);
  reg.gauge("b").set(0.1);
  std::string csv = reg.to_csv();
  EXPECT_EQ(csv.find("key,kind,count,value,sum,min,max"), 0u);
  EXPECT_NE(csv.find("a{k=v},counter,3"), std::string::npos);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a{k=v}\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

// ------------------------------------------------------------------- trace

TEST(TraceTest, ChromeJsonShape) {
  obs::MemoryTraceSink sink;
  sink.instant(SimTime(10), obs::TraceTrack::kMarket, "oob", "market",
               {{"zone", "3"}});
  sink.span(SimTime(20), 300, obs::TraceTrack::kReplay, "interval", "replay",
            {{"nodes", 5}});
  sink.counter(SimTime(20), obs::TraceTrack::kReplay, "avail",
               {{"ppm", 999000}});
  std::string json = sink.chrome_json();
  // Sim seconds map to trace microseconds.
  EXPECT_NE(json.find("\"ph\": \"i\", \"ts\": 10000000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\", \"ts\": 20000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 300000000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Track metadata names every subsystem row.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"replay\"}"), std::string::npos);
  // String args are escaped and attached.
  EXPECT_NE(json.find("\"zone\": \"3\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 5"), std::string::npos);
}

TEST(TraceTest, EscapesControlAndQuoteCharacters) {
  obs::MemoryTraceSink sink;
  sink.instant(SimTime(0), obs::TraceTrack::kCore, "na\"me", "",
               {{"k", "line1\nline2"}});
  std::string json = sink.chrome_json();
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, RetainsAllBelowCapacity) {
  obs::FlightRecorder fr(8);
  fr.note(SimTime(1), "a", "one");
  fr.note(SimTime(2), "b", "two");
  EXPECT_EQ(fr.retained(), 2u);
  EXPECT_EQ(fr.total(), 2u);
  auto es = fr.entries();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0].seq, 1u);
  EXPECT_EQ(es[0].tag, "a");
  EXPECT_EQ(es[1].text, "two");
}

TEST(FlightRecorderTest, EvictsOldestWhenFull) {
  obs::FlightRecorder fr(4);
  for (int i = 1; i <= 10; ++i) {
    fr.note(SimTime(i), "t", "event " + std::to_string(i));
  }
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.retained(), 4u);
  EXPECT_EQ(fr.total(), 10u);
  auto es = fr.entries();
  ASSERT_EQ(es.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(es[0].seq, 7u);
  EXPECT_EQ(es[3].seq, 10u);
  EXPECT_EQ(es[3].text, "event 10");

  std::ostringstream ss;
  fr.dump(ss);
  EXPECT_NE(ss.str().find("4 of 10"), std::string::npos);
  EXPECT_NE(ss.str().find("6 older evicted"), std::string::npos);
}

TEST(FlightRecorderTest, RenderStampsSeqTimeAndTag) {
  obs::FlightRecorder fr(4);
  fr.note(SimTime(3723), "paxos", "leader elected");
  auto lines = fr.render();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "#1 " + SimTime(3723).str() + " [paxos] leader elected");
}

// ----------------------------------------------------------- ambient scope

TEST(ObsContextTest, NullByDefaultAndRestoredByScope) {
  EXPECT_EQ(obs::current(), nullptr);
  EXPECT_EQ(obs::metrics(), nullptr);
  Registry reg;
  obs::ObsContext ctx;
  ctx.metrics = &reg;
  {
    obs::ContextScope scope(&ctx);
    EXPECT_EQ(obs::current(), &ctx);
    EXPECT_EQ(obs::metrics(), &reg);
    EXPECT_EQ(obs::trace(), nullptr);  // absent sinks stay null
    {
      obs::ContextScope inner(nullptr);  // nesting restores the outer
      EXPECT_EQ(obs::current(), nullptr);
    }
    EXPECT_EQ(obs::current(), &ctx);
  }
  EXPECT_EQ(obs::current(), nullptr);
  // note() with no recorder is a safe no-op.
  obs::note(SimTime(1), "t", "dropped on the floor");
}

TEST(ObsContextTest, WallHistogramIsVolatile) {
  Registry reg;
  obs::ObsContext ctx;
  ctx.metrics = &reg;
  obs::ContextScope scope(&ctx);
  {
    obs::WallScope ws(obs::wall_histogram("test.wall_ns"));
  }
  EXPECT_EQ(reg.snapshot().find("test.wall_ns"), nullptr);
  // Bind the snapshot: find() returns a pointer into its rows, which would
  // dangle past the full-expression on a temporary.
  MetricsSnapshot with_volatile = reg.snapshot(/*include_volatile=*/true);
  const MetricsSnapshot::Row* row = with_volatile.find("test.wall_ns");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 1u);  // the scope observed exactly once
}

// ----------------------------------------------- end-to-end byte identity

struct InstrumentedRun {
  std::string metrics_json;
  std::string trace_json;
  ReplayResult result;
};

InstrumentedRun instrumented_replay() {
  Scenario sc =
      make_scenario(InstanceKind::kM1Small, /*train_weeks=*/2,
                    /*replay_weeks=*/1, /*seed=*/77);
  ServiceSpec spec = ServiceSpec::lock_service();
  Registry reg;
  obs::MemoryTraceSink trace;
  obs::ObsContext ctx;
  ctx.metrics = &reg;
  ctx.trace = &trace;
  obs::ContextScope scope(&ctx);
  JupiterStrategy strategy(sc.book, spec, sc.history_start,
                           {.horizon_minutes = 60, .max_nodes = 9});
  ReplayConfig cfg = make_replay_config(sc, spec, 12 * kHour);
  InstrumentedRun out;
  out.result = replay_strategy(sc.book, strategy, cfg);
  out.metrics_json = reg.to_json();
  out.trace_json = trace.chrome_json();
  return out;
}

TEST(ObsDeterminismTest, SameSeedRunsAreByteIdentical) {
  InstrumentedRun a = instrumented_replay();
  InstrumentedRun b = instrumented_replay();
  EXPECT_EQ(a.result.cost.micros(), b.result.cost.micros());
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // And the instrumentation actually fired.
  EXPECT_NE(a.metrics_json.find("core.decisions"), std::string::npos);
  EXPECT_NE(a.metrics_json.find("replay.intervals"), std::string::npos);
  EXPECT_NE(a.trace_json.find("bid_decision"), std::string::npos);
}

TEST(ObsDeterminismTest, InstrumentationDoesNotPerturbDecisions) {
  // The same replay with observability off must produce identical results —
  // the zero-cost-when-disabled path and the instrumented path may not
  // diverge in simulation outcomes.
  Scenario sc =
      make_scenario(InstanceKind::kM1Small, 2, 1, /*seed=*/77);
  ServiceSpec spec = ServiceSpec::lock_service();
  JupiterStrategy strategy(sc.book, spec, sc.history_start,
                           {.horizon_minutes = 60, .max_nodes = 9});
  ReplayConfig cfg = make_replay_config(sc, spec, 12 * kHour);
  ReplayResult bare = replay_strategy(sc.book, strategy, cfg);

  InstrumentedRun instr = instrumented_replay();
  EXPECT_EQ(bare.cost.micros(), instr.result.cost.micros());
  EXPECT_EQ(bare.downtime, instr.result.downtime);
  EXPECT_EQ(bare.decisions, instr.result.decisions);
  EXPECT_EQ(bare.instances_launched, instr.result.instances_launched);
}

}  // namespace
}  // namespace jupiter
