#include "core/online_bidder.hpp"

#include <gtest/gtest.h>

#include "quorum/availability.hpp"

namespace jupiter {
namespace {

/// Builds a calm zone model: base price `base`, rare short spikes to
/// `spike`.  Bidding at/above `spike` is estimated perfectly safe.
ZoneFailureModel calm_model(int base, int spike, PriceTick od) {
  SemiMarkovChain chain({PriceTick(base), PriceTick(spike)});
  chain.add_transition(0, 1, 300, 1.0);
  chain.add_transition(1, 0, 5, 1.0);
  chain.normalize_rows();
  return ZoneFailureModel(std::move(chain), od);
}

/// A chaotic zone: price ricochets above the on-demand cap constantly.
ZoneFailureModel chaotic_model(PriceTick od) {
  SemiMarkovChain chain({PriceTick(100), PriceTick(od.value() + 50)});
  chain.add_transition(0, 1, 2, 1.0);
  chain.add_transition(1, 0, 2, 1.0);
  chain.normalize_rows();
  return ZoneFailureModel(std::move(chain), od);
}

MarketZoneState zone_state(int zone, int price, PriceTick od) {
  MarketZoneState st;
  st.zone = zone;
  st.price = PriceTick(price);
  st.age_minutes = 0;
  st.on_demand = od;
  return st;
}

struct BidderFixture : ::testing::Test {
  BidderFixture() {
    od = PriceTick(440);
    // 8 calm zones with increasing base prices.
    for (int z = 0; z < 8; ++z) {
      int base = 60 + z * 10;
      models.set(z, calm_model(base, base + 100, od));
      snapshot.push_back(zone_state(z, base, od));
    }
    spec = ServiceSpec::lock_service();
  }
  PriceTick od;
  FailureModelBook models;
  MarketSnapshot snapshot;
  ServiceSpec spec;
  OnlineBidder bidder{{.horizon_minutes = 60, .max_nodes = 8}};
};

TEST_F(BidderFixture, SatisfiesConstraintWithValidDeployment) {
  BidDecision d = bidder.decide(models, snapshot, spec);
  EXPECT_TRUE(d.satisfies_constraint);
  EXPECT_GE(d.nodes(), 5);
  EXPECT_GE(d.estimated_availability,
            spec.target_availability() - spec.epsilon);
}

TEST_F(BidderFixture, GreedyPicksCheapestZones) {
  BidDecision d = bidder.decide(models, snapshot, spec);
  // All zones are equally safe at bid = spike, so the cheapest spikes win —
  // those belong to the zones with the lowest bases (0, 1, 2, ...).
  for (const auto& e : d.bids) {
    EXPECT_LT(e.zone, d.nodes());
  }
}

TEST_F(BidderFixture, BidsRespectBounds) {
  BidDecision d = bidder.decide(models, snapshot, spec);
  for (const auto& e : d.bids) {
    const auto& st = snapshot[static_cast<std::size_t>(e.zone)];
    EXPECT_GE(e.bid, st.price);
    EXPECT_LT(e.bid, st.on_demand);
    EXPECT_LE(e.estimated_fp, 1.0);
  }
}

TEST_F(BidderFixture, BidSumIsConsistent) {
  BidDecision d = bidder.decide(models, snapshot, spec);
  Money sum;
  for (const auto& e : d.bids) sum += e.bid.money();
  EXPECT_EQ(sum, d.bid_sum);
}

TEST_F(BidderFixture, DecisionIsDeterministic) {
  BidDecision a = bidder.decide(models, snapshot, spec);
  BidDecision b = bidder.decide(models, snapshot, spec);
  ASSERT_EQ(a.nodes(), b.nodes());
  for (int i = 0; i < a.nodes(); ++i) {
    EXPECT_EQ(a.bids[static_cast<std::size_t>(i)].zone,
              b.bids[static_cast<std::size_t>(i)].zone);
    EXPECT_EQ(a.bids[static_cast<std::size_t>(i)].bid,
              b.bids[static_cast<std::size_t>(i)].bid);
  }
}

TEST_F(BidderFixture, ZonesWithoutModelsIgnored) {
  snapshot.push_back(zone_state(99, 10, od));  // dirt cheap but unknown
  BidDecision d = bidder.decide(models, snapshot, spec);
  for (const auto& e : d.bids) EXPECT_NE(e.zone, 99);
}

TEST_F(BidderFixture, ErasureSpecNeedsAtLeastMZones) {
  ServiceSpec storage = ServiceSpec::storage_service();
  storage.kind = InstanceKind::kM1Small;  // reuse the same snapshot
  BidDecision d = bidder.decide(models, snapshot, storage);
  EXPECT_GE(d.nodes(), storage.min_nodes());
  EXPECT_TRUE(d.satisfies_constraint);
}

TEST(OnlineBidder, FallbackWhenNothingSatisfies) {
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snapshot;
  for (int z = 0; z < 6; ++z) {
    models.set(z, chaotic_model(od));
    snapshot.push_back(zone_state(z, 100, od));
  }
  OnlineBidder bidder({.horizon_minutes = 60, .max_nodes = 6});
  ServiceSpec spec = ServiceSpec::lock_service();
  BidDecision d = bidder.decide(models, snapshot, spec);
  EXPECT_FALSE(d.satisfies_constraint);
  EXPECT_GT(d.nodes(), 0);  // degrades gracefully, never unprovisioned
  for (const auto& e : d.bids) {
    EXPECT_EQ(e.bid, od - 1);  // fallback bids the maximum allowed
  }
}

TEST(OnlineBidder, PrefersFewerNodesWhenBidSumsTie) {
  // Two configurations both satisfy; the smaller bid-sum one must win.
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snapshot;
  // 5 dirt-cheap, perfectly calm zones and 4 expensive ones.
  for (int z = 0; z < 5; ++z) {
    models.set(z, calm_model(50, 60, od));
    snapshot.push_back(zone_state(z, 50, od));
  }
  for (int z = 5; z < 9; ++z) {
    models.set(z, calm_model(400, 410, od));
    snapshot.push_back(zone_state(z, 400, od));
  }
  OnlineBidder bidder({.horizon_minutes = 60, .max_nodes = 9});
  BidDecision d = bidder.decide(models, snapshot, ServiceSpec::lock_service());
  EXPECT_EQ(d.nodes(), 5);
  for (const auto& e : d.bids) EXPECT_LT(e.zone, 5);
}

TEST(OnlineBidder, MaxNodesCapRespected) {
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snapshot;
  for (int z = 0; z < 12; ++z) {
    models.set(z, calm_model(60, 160, od));
    snapshot.push_back(zone_state(z, 60, od));
  }
  OnlineBidder bidder({.horizon_minutes = 60, .max_nodes = 7});
  BidDecision d = bidder.decide(models, snapshot, ServiceSpec::lock_service());
  EXPECT_LE(d.nodes(), 7);
}

}  // namespace
}  // namespace jupiter
