#include "paxos/group.hpp"

#include <gtest/gtest.h>

#include <map>

#include "paxos/replica.hpp"

namespace jupiter::paxos {
namespace {

/// Appends every applied command to a log — enough to check SMR order and
/// agreement.
class RecordingSm : public StateMachine {
 public:
  std::vector<std::uint8_t> apply(
      const std::vector<std::uint8_t>& command) override {
    log_.push_back(command);
    return command;  // echo
  }
  const std::vector<std::vector<std::uint8_t>>& log() const { return log_; }

 private:
  std::vector<std::vector<std::uint8_t>> log_;
};

std::vector<std::uint8_t> cmd(const std::string& s) {
  return {s.begin(), s.end()};
}

struct PaxosFixture : ::testing::Test {
  PaxosFixture()
      : net(sim, 99),
        group(sim, net, Replica::Options{},
              [this](NodeId id) {
                auto sm = std::make_unique<RecordingSm>();
                sms[id] = sm.get();
                return sm;
              },
              1234) {}

  void bootstrap(int n) {
    group.bootstrap(n);
    // Let the cluster elect a leader.
    sim.run_until(sim.now() + 120);
  }

  NodeId wait_for_leader(TimeDelta budget = 600) {
    SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      if (NodeId lead = group.leader_id(); lead >= 0) return lead;
      sim.run_until(sim.now() + 5);
    }
    return group.leader_id();
  }

  Simulator sim;
  SimNetwork net;
  std::map<NodeId, RecordingSm*> sms;
  Group group;
};

TEST_F(PaxosFixture, ElectsExactlyOneLeader) {
  bootstrap(5);
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  int leaders = 0;
  for (NodeId id : group.node_ids()) {
    if (group.replica(id).is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST_F(PaxosFixture, CommandCommitsAndEchoes) {
  bootstrap(3);
  ASSERT_GE(wait_for_leader(), 0);
  bool done = false;
  std::vector<std::uint8_t> response;
  group.submit(cmd("hello"), [&](bool ok, const std::vector<std::uint8_t>& r) {
    done = ok;
    response = r;
  });
  sim.run_until(sim.now() + 120);
  ASSERT_TRUE(done);
  EXPECT_EQ(response, cmd("hello"));
}

TEST_F(PaxosFixture, AllReplicasApplySameSequence) {
  bootstrap(5);
  ASSERT_GE(wait_for_leader(), 0);
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    group.submit(cmd("op" + std::to_string(i)),
                 [&](bool ok, const std::vector<std::uint8_t>&) {
                   if (ok) ++committed;
                 });
    sim.run_until(sim.now() + 30);
  }
  sim.run_until(sim.now() + 300);
  EXPECT_EQ(committed, 10);
  const auto& reference = sms[0]->log();
  EXPECT_EQ(reference.size(), 10u);
  for (NodeId id : group.node_ids()) {
    EXPECT_EQ(sms[id]->log(), reference) << "replica " << id;
  }
}

TEST_F(PaxosFixture, SurvivesMinorityCrash) {
  bootstrap(5);
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  // Crash two non-leader replicas.
  int crashed = 0;
  for (NodeId id : group.node_ids()) {
    if (id != lead && crashed < 2) {
      group.crash(id);
      ++crashed;
    }
  }
  bool done = false;
  group.submit(cmd("after-crashes"),
               [&](bool ok, const std::vector<std::uint8_t>&) { done = ok; });
  sim.run_until(sim.now() + 300);
  EXPECT_TRUE(done);
}

TEST_F(PaxosFixture, LeaderFailoverPreservesCommittedCommands) {
  bootstrap(5);
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  bool first_done = false;
  group.submit(cmd("before"), [&](bool ok, const std::vector<std::uint8_t>&) {
    first_done = ok;
  });
  sim.run_until(sim.now() + 120);
  ASSERT_TRUE(first_done);

  group.crash(lead);
  // A new leader must emerge and accept commands.
  bool second_done = false;
  SimTime deadline = sim.now() + 600;
  group.submit(cmd("after"), [&](bool ok, const std::vector<std::uint8_t>&) {
    second_done = ok;
  });
  while (sim.now() < deadline && !second_done) sim.run_until(sim.now() + 10);
  ASSERT_TRUE(second_done);
  NodeId new_lead = group.leader_id();
  ASSERT_GE(new_lead, 0);
  EXPECT_NE(new_lead, lead);
  // The survivor's log contains both commands in order.
  ASSERT_GE(sms[new_lead]->log().size(), 2u);
  EXPECT_EQ(sms[new_lead]->log()[0], cmd("before"));
  EXPECT_EQ(sms[new_lead]->log().back(), cmd("after"));
}

TEST_F(PaxosFixture, CrashedReplicaCatchesUpAfterRestart) {
  bootstrap(3);
  ASSERT_GE(wait_for_leader(), 0);
  NodeId victim = -1;
  for (NodeId id : group.node_ids()) {
    if (!group.replica(id).is_leader()) {
      victim = id;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  group.crash(victim);
  bool done = false;
  group.submit(cmd("while-down"),
               [&](bool ok, const std::vector<std::uint8_t>&) { done = ok; });
  sim.run_until(sim.now() + 200);
  ASSERT_TRUE(done);
  group.restart(victim);
  // The retry/heartbeat machinery re-delivers; give it time plus another
  // command to force progress.
  group.submit(cmd("after-restart"), nullptr);
  sim.run_until(sim.now() + 600);
  EXPECT_GE(group.replica(victim).commit_index(), 1);
}

TEST_F(PaxosFixture, NoQuorumNoProgress) {
  bootstrap(5);
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  // Crash three of five: no quorum.
  int crashed = 0;
  for (NodeId id : group.node_ids()) {
    if (id != lead && crashed < 3) {
      group.crash(id);
      ++crashed;
    }
  }
  bool committed = false;
  group.replica(lead).submit(
      cmd("stuck"),
      [&](bool ok, const std::vector<std::uint8_t>&) { committed = ok; });
  sim.run_until(sim.now() + 600);
  EXPECT_FALSE(committed);
  // Safety held: the command was never applied anywhere.
  for (NodeId id : group.node_ids()) {
    for (const auto& c : sms[id]->log()) EXPECT_NE(c, cmd("stuck"));
  }
}

TEST_F(PaxosFixture, SubmitToFollowerFailsFast) {
  bootstrap(3);
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  NodeId follower = -1;
  for (NodeId id : group.node_ids()) {
    if (id != lead) follower = id;
  }
  bool called = false, ok_value = true;
  group.replica(follower).submit(
      cmd("x"), [&](bool ok, const std::vector<std::uint8_t>&) {
        called = true;
        ok_value = ok;
      });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok_value);
  EXPECT_EQ(group.replica(follower).believed_leader(), lead);
}

TEST_F(PaxosFixture, MembershipGrowsViaConfigEntry) {
  bootstrap(3);
  ASSERT_GE(wait_for_leader(), 0);
  group.submit(cmd("seed"), nullptr);
  sim.run_until(sim.now() + 120);

  bool config_done = false;
  group.add_node(3, [&](bool ok, const std::vector<std::uint8_t>&) {
    config_done = ok;
  });
  sim.run_until(sim.now() + 300);
  ASSERT_TRUE(config_done);
  for (NodeId id : group.node_ids()) {
    if (group.replica(id).commit_index() > 0) {
      EXPECT_EQ(group.replica(id).config().size(), 4u) << "replica " << id;
    }
  }
  // The newcomer received the snapshot (seed command applied).
  EXPECT_GE(sms[3]->log().size(), 1u);
  // And the grown cluster still commits.
  bool done = false;
  group.submit(cmd("with-4"), [&](bool ok, const std::vector<std::uint8_t>&) {
    done = ok;
  });
  sim.run_until(sim.now() + 300);
  EXPECT_TRUE(done);
}

TEST_F(PaxosFixture, MembershipShrinks) {
  bootstrap(5);
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  NodeId victim = -1;
  for (NodeId id : group.node_ids()) {
    if (id != lead) victim = id;
  }
  bool config_done = false;
  group.remove_node(victim, [&](bool ok, const std::vector<std::uint8_t>&) {
    config_done = ok;
  });
  sim.run_until(sim.now() + 300);
  ASSERT_TRUE(config_done);
  EXPECT_EQ(group.replica(lead).config().size(), 4u);
  bool done = false;
  group.submit(cmd("with-4"), [&](bool ok, const std::vector<std::uint8_t>&) {
    done = ok;
  });
  sim.run_until(sim.now() + 300);
  EXPECT_TRUE(done);
}

TEST_F(PaxosFixture, ValueBytesTravelOnce) {
  bootstrap(3);
  ASSERT_GE(wait_for_leader(), 0);
  std::uint64_t before = net.value_bytes_sent();
  group.submit(cmd(std::string(1000, 'x')), nullptr);
  sim.run_until(sim.now() + 200);
  std::uint64_t sent = net.value_bytes_sent() - before;
  // Full replication: leader sends the 1000-byte value to each peer in
  // accept and chosen messages (plus self-delivery bookkeeping).  It must
  // be a small multiple of n * size, not quadratic.
  EXPECT_GT(sent, 2000u);
  EXPECT_LT(sent, 12000u);
}

// Safety property under message-level chaos: drop 20% of messages and crash
// /restart nodes; all replicas that applied slot i applied the same value.
TEST(PaxosChaos, AgreementUnderDropsAndCrashes) {
  Simulator sim;
  SimNetwork::Options nopts;
  nopts.drop_rate = 0.2;
  nopts.min_latency = 0;
  nopts.max_latency = 3;
  SimNetwork net(sim, 7, nopts);
  std::map<NodeId, RecordingSm*> sms;
  Group group(
      sim, net, Replica::Options{},
      [&](NodeId id) {
        auto sm = std::make_unique<RecordingSm>();
        sms[id] = sm.get();
        return sm;
      },
      555);
  group.bootstrap(5);
  Rng rng(2024);

  int submitted = 0;
  for (int round = 0; round < 40; ++round) {
    sim.run_until(sim.now() + 30);
    if (NodeId lead = group.leader_id(); lead >= 0) {
      group.replica(lead).submit(cmd("op" + std::to_string(submitted++)),
                                 nullptr);
    }
    // Random crash/restart churn on a minority.
    if (round % 7 == 3) {
      NodeId victim = static_cast<NodeId>(rng.below(5));
      if (group.replica(victim).alive()) {
        group.crash(victim);
      } else {
        group.restart(victim);
      }
    }
    if (round % 7 == 6) {
      for (NodeId id : group.node_ids()) {
        if (!group.replica(id).alive()) group.restart(id);
      }
    }
  }
  for (NodeId id : group.node_ids()) {
    if (!group.replica(id).alive()) group.restart(id);
  }
  sim.run_until(sim.now() + 2000);

  // Agreement: compare applied prefixes pairwise.
  for (NodeId a : group.node_ids()) {
    for (NodeId b : group.node_ids()) {
      const auto& la = sms[a]->log();
      const auto& lb = sms[b]->log();
      std::size_t common = std::min(la.size(), lb.size());
      for (std::size_t i = 0; i < common; ++i) {
        EXPECT_EQ(la[i], lb[i]) << "divergence at " << i << " between " << a
                                << " and " << b;
      }
    }
  }
  EXPECT_GT(submitted, 10);
}

}  // namespace
}  // namespace jupiter::paxos
