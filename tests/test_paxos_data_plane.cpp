// The high-throughput data plane (ISSUE 10): op batching, multi-slot
// pipelining, leader leases, and fast catch-up — exercised directly on a
// ClusterHarness and, for lease safety, across the seeded chaos corpus.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "paxos/harness.hpp"

namespace jupiter::paxos {
namespace {

/// Appends every applied command — order and multiplicity are the facts
/// the batching/pipelining tests check.
class RecordingSm : public StateMachine {
 public:
  std::vector<std::uint8_t> apply(
      const std::vector<std::uint8_t>& command) override {
    log_.push_back(command);
    return command;  // echo
  }
  const std::vector<std::vector<std::uint8_t>>& log() const { return log_; }

 private:
  std::vector<std::vector<std::uint8_t>> log_;
};

std::vector<std::uint8_t> cmd(const std::string& s) {
  return {s.begin(), s.end()};
}

/// Plain struct (not a gtest fixture) so the determinism test can run two
/// independent instances side by side.
struct TestCluster {
  void start(int nodes = 5, std::uint64_t seed = 7,
             std::optional<DataPlaneOptions> plane = std::nullopt) {
    ClusterHarness::Options o;
    o.nodes = nodes;
    o.replica.plane = plane ? *plane : ClusterHarness::data_plane_preset();
    o.net_seed = seed;
    o.group_seed = seed + 1;
    o.settle = 120;
    cluster.emplace(o, [this](NodeId id) {
      auto sm = std::make_unique<RecordingSm>();
      sms[id] = sm.get();
      return sm;
    });
  }

  Simulator& sim() { return cluster->sim; }
  Group& group() { return cluster->group; }

  /// Submits `n` commands through the group client, one per sim-second.
  /// Returns how many were acked ok after `settle` extra seconds.
  int submit_burst(int n, const std::string& prefix, TimeDelta settle = 600) {
    int committed = 0;
    for (int i = 0; i < n; ++i) {
      group().submit(cmd(prefix + std::to_string(i)),
                     [&committed](bool ok, const std::vector<std::uint8_t>&) {
                       if (ok) ++committed;
                     });
      sim().run_until(sim().now() + 1);
    }
    sim().run_until(sim().now() + settle);
    return committed;
  }

  std::map<NodeId, RecordingSm*> sms;
  std::optional<ClusterHarness> cluster;
};

struct PaxosDataPlane : ::testing::Test, TestCluster {};

TEST_F(PaxosDataPlane, BatchingCoalescesOpsAndFansAcksBack) {
  start();
  NodeId lead = cluster->wait_for_leader();
  ASSERT_GE(lead, 0);
  // All 64 ops submitted at one instant: the flush must coalesce them into
  // far fewer slots than ops, and every per-op callback must still fire.
  int committed = 0;
  for (int i = 0; i < 64; ++i) {
    group().submit(cmd("op" + std::to_string(i)),
                   [&committed](bool ok, const std::vector<std::uint8_t>&) {
                     if (ok) ++committed;
                   });
  }
  sim().run_until(sim().now() + 600);
  EXPECT_EQ(committed, 64);

  const Replica& leader = group().replica(lead);
  EXPECT_GT(leader.batches_proposed(), 0);
  EXPECT_LT(leader.commit_index(), 64u);  // fewer slots than ops
  // Every replica applied the same 64 commands in the same order.
  const auto& ref = sms[lead]->log();
  EXPECT_EQ(ref.size(), 64u);
  for (NodeId id : group().node_ids()) {
    EXPECT_EQ(sms[id]->log(), ref) << "replica " << id;
  }
}

TEST_F(PaxosDataPlane, BatchingIsDeterministic) {
  // Same seeds, same workload => bit-identical batch boundaries.  The
  // digest folds every (slot, ops) pair the leader flushed, so any
  // divergence in coalescing shows up here before anything else.
  auto run_once = [](std::uint64_t* digest, std::int64_t* batches,
                     std::int64_t* ops) {
    TestCluster f;
    f.start(5, 21);
    NodeId lead = f.cluster->wait_for_leader();
    ASSERT_GE(lead, 0);
    EXPECT_EQ(f.submit_burst(50, "det"), 50);
    const Replica& leader = f.group().replica(lead);
    *digest = leader.batch_digest();
    *batches = leader.batches_proposed();
    *ops = leader.batched_ops();
  };
  std::uint64_t d1 = 0, d2 = 0;
  std::int64_t b1 = 0, b2 = 0, o1 = 0, o2 = 0;
  run_once(&d1, &b1, &o1);
  run_once(&d2, &b2, &o2);
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(d1, d2);
}

TEST_F(PaxosDataPlane, PipelinedGapRecoveryAfterLeaderCrash) {
  start();
  NodeId lead = cluster->wait_for_leader();
  ASSERT_GE(lead, 0);

  // Fill the pipeline, then kill the leader with a window of undecided
  // slots in flight — some slots will be chosen at a quorum, later ones
  // not, and the next leader must finish the prefix without leaving holes.
  int committed = 0;
  auto count = [&committed](bool ok, const std::vector<std::uint8_t>&) {
    if (ok) ++committed;
  };
  for (int i = 0; i < 40; ++i) {
    group().submit(cmd("pre" + std::to_string(i)), count);
  }
  sim().run_until(sim().now() + 1);  // accepts in flight, nothing settled
  group().crash(lead);

  NodeId lead2 = cluster->wait_for_leader();
  ASSERT_GE(lead2, 0);
  EXPECT_NE(lead2, lead);
  for (int i = 0; i < 40; ++i) {
    group().submit(cmd("post" + std::to_string(i)), count);
    sim().run_until(sim().now() + 1);
  }
  group().restart(lead);
  sim().run_until(sim().now() + 900);

  // Liveness: the post-crash workload commits (pre-crash ops may have died
  // with the leader's queue — Group retries them until its deadline).
  EXPECT_GE(committed, 40);

  // Gap-safety: every slot below each replica's commit index is chosen,
  // and all replicas applied identical sequences.
  const auto& ref = sms[lead2]->log();
  EXPECT_GE(ref.size(), 40u);
  for (NodeId id : group().node_ids()) {
    const Replica& r = group().replica(id);
    for (Slot s = 0; s < r.commit_index(); ++s) {
      EXPECT_NE(r.chosen_value(s), nullptr)
          << "replica " << id << " has a hole at slot " << s;
    }
    EXPECT_EQ(sms[id]->log(), ref) << "replica " << id;
  }
}

TEST_F(PaxosDataPlane, LeaseMutualExclusionAcrossPartition) {
  start();
  NodeId lead = cluster->wait_for_leader();
  ASSERT_GE(lead, 0);
  sim().run_until(sim().now() + 30);
  EXPECT_TRUE(group().replica(lead).holds_lease());

  // Cut the leader off.  Its lease must lapse before any rival can both
  // win an election and earn a lease — poll every simulated second that
  // no two replicas ever hold one simultaneously.
  for (NodeId id : group().node_ids()) {
    if (id != lead) cluster->net.cut_pair(lead, id);
  }
  SimTime deadline = sim().now() + 120;
  NodeId new_lead = -1;
  while (sim().now() < deadline) {
    sim().run_until(sim().now() + 1);
    int holders = 0;
    for (NodeId id : group().node_ids()) {
      if (group().replica(id).holds_lease()) {
        ++holders;
        if (id != lead) new_lead = id;
      }
    }
    ASSERT_LE(holders, 1) << "two leaseholders at t=" << sim().now().seconds();
  }
  // A rival took over once the old grants expired; the deposed leader's
  // lease is gone even though it still cannot hear the new ballot.
  ASSERT_GE(new_lead, 0);
  EXPECT_NE(new_lead, lead);
  EXPECT_TRUE(group().replica(new_lead).holds_lease());
  EXPECT_FALSE(group().replica(lead).holds_lease());

  for (NodeId id : group().node_ids()) {
    if (id != lead) cluster->net.heal_pair(lead, id);
  }
  sim().run_until(sim().now() + 60);
  EXPECT_FALSE(group().replica(lead).is_leader());
}

TEST_F(PaxosDataPlane, FastCatchupRestoresACrashedFollower) {
  start();
  NodeId lead = cluster->wait_for_leader();
  ASSERT_GE(lead, 0);
  NodeId follower = -1;
  for (NodeId id : group().node_ids()) {
    if (id != lead) {
      follower = id;
      break;
    }
  }
  group().crash(follower);

  EXPECT_EQ(submit_burst(120, "cu", 300), 120);
  group().restart(follower);
  sim().run_until(sim().now() + 600);

  // The follower converged, and the leader served its recovery in batched
  // catch-up chunks rather than one message per slot.
  EXPECT_EQ(sms[follower]->log(), sms[lead]->log());
  EXPECT_GT(group().replica(lead).catchup_slots_served(), 0);
}

}  // namespace
}  // namespace jupiter::paxos

namespace jupiter::chaos {
namespace {

ChaosOptions data_plane_quick() {
  ChaosOptions opts;
  opts.horizon = kHour;
  opts.fault_events = 8;
  opts.data_plane = true;
  return opts;
}

TEST(DataPlaneChaos, SixteenSeedLeaseSafety) {
  // The full feature set under seeded fault schedules (leaseholder crashes
  // in the mix), with the lease-exclusion and apply-once checkers polling
  // throughout.  Any double-leaseholder or re-applied batch fails here.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    ChaosReport report = ChaosRunner(seed, data_plane_quick()).run();
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations.front().detail);
    EXPECT_GT(report.checks_run, 0u) << "seed " << seed;
  }
}

TEST(DataPlaneChaos, SameSeedSameFingerprintWithDataPlane) {
  // Batching and leases must not cost determinism: one seed, two runs,
  // identical fingerprints with the whole data plane enabled.
  ChaosReport a = ChaosRunner(5, data_plane_quick()).run();
  ChaosReport b = ChaosRunner(5, data_plane_quick()).run();
  EXPECT_EQ(a.commands_applied, b.commands_applied);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.lock_digest, b.lock_digest);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace jupiter::chaos
