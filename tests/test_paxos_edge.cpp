// Paxos edge cases: config codec, snapshot installs, group-level deadline
// failures, ballot ordering.
#include <gtest/gtest.h>

#include <map>

#include "paxos/group.hpp"

namespace jupiter::paxos {
namespace {

class NullSm : public StateMachine {
 public:
  std::vector<std::uint8_t> apply(
      const std::vector<std::uint8_t>& command) override {
    ++applied;
    return command;
  }
  int applied = 0;
};

TEST(ConfigCodec, RoundTrip) {
  std::vector<NodeId> members = {0, 3, 7, 12};
  EXPECT_EQ(decode_config(encode_config(members)), members);
  EXPECT_TRUE(decode_config(encode_config({})).empty());
}

TEST(ConfigCodec, RejectsMalformed) {
  EXPECT_THROW(decode_config({1, 2, 3}), std::invalid_argument);
  auto bytes = encode_config({1, 2});
  bytes.pop_back();
  EXPECT_THROW(decode_config(bytes), std::invalid_argument);
  // Count larger than the payload.
  std::vector<std::uint8_t> lying = {5, 0, 0, 0, 1, 0, 0, 0};
  EXPECT_THROW(decode_config(lying), std::invalid_argument);
}

TEST(Ballot, LexicographicOrdering) {
  EXPECT_LT((Ballot{1, 5}), (Ballot{2, 0}));
  EXPECT_LT((Ballot{2, 0}), (Ballot{2, 1}));
  EXPECT_EQ((Ballot{3, 3}), (Ballot{3, 3}));
  EXPECT_FALSE(Ballot{}.valid());
  EXPECT_TRUE((Ballot{1, 0}).valid());
  EXPECT_EQ((Ballot{4, 2}).str(), "4.2");
}

TEST(Replica, InstallSnapshotAppliesInOrder) {
  Simulator sim;
  SimNetwork net(sim, 1);
  NullSm sm;
  Replica rep(sim, net, 9, {9}, sm, Replica::Options{}, 1);
  Value v1;
  v1.kind = ValueKind::kCommand;
  v1.payload = {1};
  Value v2;
  v2.kind = ValueKind::kCommand;
  v2.payload = {2};
  rep.install_snapshot({{0, v1}, {1, v2}}, {9});
  EXPECT_EQ(rep.commit_index(), 2);
  EXPECT_EQ(sm.applied, 2);
  // A gap stops the applied prefix.
  Value v4;
  v4.kind = ValueKind::kCommand;
  v4.payload = {4};
  rep.install_snapshot({{3, v4}}, {9});
  EXPECT_EQ(rep.commit_index(), 2);
}

TEST(Replica, SubmitWhenDeadFailsImmediately) {
  Simulator sim;
  SimNetwork net(sim, 2);
  NullSm sm;
  Replica rep(sim, net, 0, {0, 1, 2}, sm, Replica::Options{}, 3);
  // Never started: not alive.
  bool called = false, ok = true;
  rep.submit({1}, [&](bool o, const std::vector<std::uint8_t>&) {
    called = true;
    ok = o;
  });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(Group, SubmitFailsAfterDeadlineWithoutQuorum) {
  Simulator sim;
  SimNetwork net(sim, 3);
  Group group(
      sim, net, Replica::Options{},
      [](NodeId) { return std::make_unique<NullSm>(); }, 4);
  group.bootstrap(3);
  sim.run_until(sim.now() + 120);
  ASSERT_GE(group.leader_id(), 0);
  // Kill everyone: no leader can serve.
  for (NodeId id : group.node_ids()) group.crash(id);
  bool called = false, ok = true;
  group.submit({1}, [&](bool o, const std::vector<std::uint8_t>&) {
    called = true;
    ok = o;
  }, /*deadline=*/100);
  sim.run_until(sim.now() + 400);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(Group, AddExistingNodeThrows) {
  Simulator sim;
  SimNetwork net(sim, 5);
  Group group(
      sim, net, Replica::Options{},
      [](NodeId) { return std::make_unique<NullSm>(); }, 6);
  group.bootstrap(3);
  EXPECT_THROW(group.add_node(0), std::invalid_argument);
  EXPECT_THROW(group.replica(99), std::out_of_range);
}

TEST(Group, AddNodeWithoutLeaderFails) {
  Simulator sim;
  SimNetwork net(sim, 7);
  Group group(
      sim, net, Replica::Options{},
      [](NodeId) { return std::make_unique<NullSm>(); }, 8);
  group.bootstrap(3);
  // No time to elect a leader yet.
  bool called = false, ok = true;
  group.add_node(7, [&](bool o, const std::vector<std::uint8_t>&) {
    called = true;
    ok = o;
  });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(QuorumPolicyMath, MajorityAndRsTables) {
  QuorumPolicy maj;
  EXPECT_EQ(maj.quorum(1), 1);
  EXPECT_EQ(maj.quorum(3), 2);
  EXPECT_EQ(maj.quorum(5), 3);
  EXPECT_EQ(maj.quorum(7), 4);
  EXPECT_FALSE(maj.coded());
  QuorumPolicy rs;
  rs.kind = QuorumPolicy::Kind::kRsPaxos;
  rs.rs_m = 3;
  EXPECT_EQ(rs.quorum(5), 4);
  EXPECT_EQ(rs.quorum(6), 5);  // ceil((6+3)/2)
  EXPECT_EQ(rs.quorum(9), 6);
  // Intersection of any two quorums >= m.
  for (int n = 3; n <= 12; ++n) {
    EXPECT_GE(2 * rs.quorum(n) - n, 3) << n;
  }
}

}  // namespace
}  // namespace jupiter::paxos
