#include "market/price_process.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace jupiter {
namespace {

ZoneProfile profile_for(std::size_t idx, std::uint64_t seed = 1) {
  return draw_zone_profile(idx, PriceTick(440) /* $0.044 */, seed);
}

TEST(ZoneProfile, DeterministicInIndexAndSeed) {
  ZoneProfile a = profile_for(3, 42);
  ZoneProfile b = profile_for(3, 42);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.base_frac, b.base_frac);
  ZoneProfile c = profile_for(4, 42);
  EXPECT_NE(a.seed, c.seed);
}

TEST(ZoneProfile, ParametersInDocumentedBands) {
  for (std::size_t i = 0; i < 24; ++i) {
    ZoneProfile zp = profile_for(i);
    EXPECT_GE(zp.base_frac, 0.13);
    EXPECT_LE(zp.base_frac, 0.24);
    EXPECT_GT(zp.spike_rate, 0.0);
    EXPECT_GT(zp.mean_sojourn_base, zp.mean_sojourn_spike);
    EXPECT_TRUE(zp.spike_frac <= 0.85 || zp.spike_frac >= 1.05)
        << "spike should be clearly sub- or super-on-demand";
  }
}

TEST(ZoneProfile, SomeZonesAreSpiky) {
  int spiky = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (profile_for(i).spike_frac > 1.0) ++spiky;
  }
  // ~20% of zones; allow a wide band for the small sample.
  EXPECT_GE(spiky, 3);
  EXPECT_LE(spiky, 20);
}

TEST(GroundTruthChain, LadderIsStrictlyIncreasingWithSpikeOnTop) {
  for (std::size_t i = 0; i < 10; ++i) {
    ZoneProfile zp = profile_for(i);
    SemiMarkovChain chain = make_ground_truth_chain(zp);
    ASSERT_GE(chain.state_count(), 2);
    for (int s = 0; s + 1 < chain.state_count(); ++s) {
      EXPECT_LT(chain.state_price(s), chain.state_price(s + 1));
    }
    // No absorbing states: the market never freezes.
    for (int s = 0; s < chain.state_count(); ++s) {
      EXPECT_FALSE(chain.is_absorbing(s));
      EXPECT_NEAR(chain.row_mass(s), 1.0, 1e-9);
    }
  }
}

TEST(GroundTruthChain, StationaryMassConcentratesLow) {
  ZoneProfile zp = profile_for(1);
  SemiMarkovChain chain = make_ground_truth_chain(zp);
  auto pi = chain.stationary_occupancy();
  ASSERT_FALSE(pi.empty());
  double low = 0;
  for (int s = 0; s < 4; ++s) low += pi[static_cast<std::size_t>(s)];
  EXPECT_GT(low, 0.6);  // the calm band dominates
  // Spike occupancy is rare.
  EXPECT_LT(pi.back(), 0.05);
}

TEST(GroundTruthChain, MeanPriceNearBaseFraction) {
  // The long-run average spot price should sit near base_frac of on-demand
  // (this is what makes ~80% cost reductions possible).
  for (std::size_t i = 0; i < 8; ++i) {
    ZoneProfile zp = profile_for(i);
    SemiMarkovChain chain = make_ground_truth_chain(zp);
    auto pi = chain.stationary_occupancy();
    double mean = 0;
    for (int s = 0; s < chain.state_count(); ++s) {
      mean += pi[static_cast<std::size_t>(s)] *
              chain.state_price(s).value();
    }
    double od = static_cast<double>(zp.on_demand.value());
    EXPECT_GT(mean / od, 0.08);
    EXPECT_LT(mean / od, 0.45);
  }
}

TEST(GenerateZoneTrace, DeterministicAndInRange) {
  ZoneProfile zp = profile_for(2);
  SpotTrace a = generate_zone_trace(zp, SimTime(0), SimTime(kWeek));
  SpotTrace b = generate_zone_trace(zp, SimTime(0), SimTime(kWeek));
  EXPECT_EQ(a.points(), b.points());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.start(), SimTime(0));
  SemiMarkovChain chain = make_ground_truth_chain(zp);
  PriceTick lo = chain.state_price(0);
  PriceTick hi = chain.state_price(chain.state_count() - 1);
  for (const auto& p : a.points()) {
    EXPECT_GE(p.price, lo);
    EXPECT_LE(p.price, hi);
  }
}

TEST(GenerateZoneTrace, PricesChangeManyTimes) {
  ZoneProfile zp = profile_for(5);
  SpotTrace tr = generate_zone_trace(zp, SimTime(0), SimTime(4 * kWeek));
  // 2014-style markets change many times per day.
  EXPECT_GT(tr.size(), 100u);
}

TEST(SojournSupport, SortedPositiveMinutes) {
  auto sup = sojourn_support();
  ASSERT_FALSE(sup.empty());
  EXPECT_EQ(sup.front(), 1);
  for (std::size_t i = 0; i + 1 < sup.size(); ++i) {
    EXPECT_LT(sup[i], sup[i + 1]);
  }
  EXPECT_LE(sup.back(), kMaxSojournMinutes);
}

}  // namespace
}  // namespace jupiter
