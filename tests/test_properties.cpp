// Cross-module property tests: randomized invariants that tie the market,
// billing, model and bidder layers together.
#include <gtest/gtest.h>

#include "core/failure_model.hpp"
#include "market/billing.hpp"
#include "market/price_process.hpp"
#include "util/rng.hpp"

namespace jupiter {
namespace {

SpotTrace random_trace(Rng& rng, SimTime end) {
  SpotTrace tr;
  SimTime t(0);
  tr.append(t, PriceTick(static_cast<std::int32_t>(50 + rng.below(100))));
  while (true) {
    t += static_cast<TimeDelta>(60 + rng.below(4 * kHour));
    if (t >= end) break;
    tr.append(t, PriceTick(static_cast<std::int32_t>(50 + rng.below(100))));
  }
  return tr;
}

/// Reference billing: walk hour by hour, charge the last price of each
/// completed hour (and the partial hour iff user-terminated).
Money reference_bill(const SpotTrace& tr, SimTime start, SimTime req_end,
                     PriceTick bid) {
  if (tr.price_at(start) > bid) return Money(0);
  SimTime end = req_end;
  bool oob = false;
  if (auto x = tr.first_exceed(start, bid); x && *x < req_end) {
    end = *x;
    oob = true;
  }
  Money total;
  for (SimTime hs = start; hs < end; hs += kHour) {
    SimTime he = hs + kHour;
    if (he <= end) {
      total += tr.price_at(he - 1).money();
    } else if (!oob) {
      total += tr.price_at(end - 1).money();
    }
  }
  return total;
}

class BillingProperty : public ::testing::TestWithParam<int> {};

TEST_P(BillingProperty, MatchesReferenceOnRandomTraces) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 30; ++trial) {
    SpotTrace tr = random_trace(rng, SimTime(3 * kDay));
    auto start = SimTime(static_cast<std::int64_t>(rng.below(kDay)));
    SimTime end = start + static_cast<TimeDelta>(kHour + rng.below(kDay));
    PriceTick bid(static_cast<std::int32_t>(40 + rng.below(130)));
    SpotBill bill = bill_spot_instance(tr, start, end, bid);
    EXPECT_EQ(bill.charge, reference_bill(tr, start, end, bid))
        << "seed " << GetParam() << " trial " << trial;
    // Charges are never negative and never exceed hours * max price.
    EXPECT_GE(bill.charge.micros(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BillingProperty, ::testing::Range(1, 7));

class BidCurveProperty : public ::testing::TestWithParam<int> {};

TEST_P(BidCurveProperty, MonotoneAndConsistent) {
  // Random ground-truth chains; the model's bid curve must be monotone in
  // the bid and min_bid_for_fp must agree with fp_at.
  auto seed = static_cast<std::uint64_t>(GetParam());
  ZoneProfile zp = draw_zone_profile(seed % 24, PriceTick(440), seed * 31);
  SpotTrace tr = generate_zone_trace(zp, SimTime(0), SimTime(4 * kWeek));
  ZoneFailureModel model =
      ZoneFailureModel::train(tr, PriceTick(440));
  MarketZoneState st;
  st.zone = 0;
  st.price = tr.price_at(SimTime(4 * kWeek - 1));
  st.age_minutes = 17;
  st.on_demand = PriceTick(440);

  for (int horizon : {60, 360}) {
    BidCurve curve = model.bid_curve(st, horizon);
    double prev = 2.0;
    for (int s = 0; s < model.chain().state_count(); ++s) {
      PriceTick b = model.chain().state_price(s);
      if (b < st.price || b >= st.on_demand) continue;
      double fp = curve.fp_at(b);
      EXPECT_LE(fp, prev + 1e-9);
      EXPECT_GE(fp, model.fp_prime() - 1e-12);  // Eq. 4 floor
      prev = fp;
    }
    for (double target : {0.5, 0.1, 0.02, 0.0103}) {
      auto bid = curve.min_bid_for_fp(target);
      if (bid) {
        EXPECT_LE(curve.fp_at(*bid), target + 1e-9);
        EXPECT_GE(*bid, st.price);
        EXPECT_LT(*bid, st.on_demand);
      } else {
        // Infeasible: even the best allowed bid misses the target.
        EXPECT_GT(curve.best_achievable_fp(), target);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidCurveProperty, ::testing::Range(1, 13));

TEST(HitVsMonteCarlo, AgeConditionedGroundTruth) {
  // Age-conditioned first passage against Monte Carlo on a ground-truth
  // chain whose sojourns are decidedly non-memoryless.
  SemiMarkovChain chain({PriceTick(10), PriceTick(20), PriceTick(30)});
  chain.add_transition(0, 1, 2, 0.45);
  chain.add_transition(0, 1, 40, 0.45);
  chain.add_transition(0, 2, 10, 0.10);
  chain.add_transition(1, 0, 5, 1.0);
  chain.add_transition(2, 0, 5, 1.0);
  chain.normalize_rows();

  const int age = 5;  // past the 2-minute mode: long-sojourn regime likely
  const int horizon = 20;
  double analytic = chain.hit_one(0, age, horizon, 1);

  Rng rng(31337);
  int hits = 0, trials = 0;
  while (trials < 30000) {
    // Rejection-sample the age condition: start fresh, require the first
    // sojourn to exceed `age`, then measure the remaining time.
    auto jump = chain.sample_jump(0, rng);
    ASSERT_TRUE(jump.has_value());
    if (jump->sojourn <= age) continue;
    ++trials;
    bool hit = false;
    int elapsed = jump->sojourn - age;
    int state = jump->next;
    while (elapsed <= horizon) {
      if (state > 1) {
        hit = true;
        break;
      }
      auto j2 = chain.sample_jump(state, rng);
      ASSERT_TRUE(j2.has_value());
      elapsed += j2->sojourn;
      if (elapsed > horizon) break;
      state = j2->next;
    }
    hits += hit ? 1 : 0;
  }
  EXPECT_NEAR(analytic, static_cast<double>(hits) / trials, 0.01);
}

TEST(EstimatedVsTruth, HitProbabilityConvergesWithData) {
  // The estimated chain's first-passage probabilities approach the ground
  // truth's as training data grows — Fig. 4's premise.
  ZoneProfile zp = draw_zone_profile(3, PriceTick(440), 99);
  SemiMarkovChain truth = make_ground_truth_chain(zp);
  Rng rng(zp.seed);
  SpotTrace trace = truth.generate(SimTime(0), SimTime(26 * kWeek), 1, rng);

  int state = truth.nearest_state(trace.price_at(SimTime(26 * kWeek - 1)));
  PriceTick mid = truth.state_price(truth.state_count() / 2);
  double want = truth.hit_probability(state, 0, 60, mid);

  double err_short, err_long;
  {
    SemiMarkovChain est =
        SemiMarkovChain::estimate(trace.slice(SimTime(0), SimTime(2 * kWeek)));
    int s = est.nearest_state(truth.state_price(state));
    err_short = std::abs(est.hit_probability(s, 0, 60, mid) - want);
  }
  {
    SemiMarkovChain est = SemiMarkovChain::estimate(
        trace.slice(SimTime(0), SimTime(26 * kWeek)));
    int s = est.nearest_state(truth.state_price(state));
    err_long = std::abs(est.hit_probability(s, 0, 60, mid) - want);
  }
  EXPECT_LT(err_long, 0.02);
  EXPECT_LE(err_long, err_short + 0.005);
}

}  // namespace
}  // namespace jupiter
