#include "cloud/provider.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jupiter {
namespace {

/// Book with one zone (index 0, us-east-1a) whose m1.small price is 100
/// ticks from t=0, 300 from t=5000, 100 again from t=9000.
TraceBook make_book() {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(5000), PriceTick(300));
  tr.append(SimTime(9000), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  return book;
}

struct ProviderFixture : ::testing::Test {
  ProviderFixture() : book(make_book()), provider(sim, book, 42) {}
  Simulator sim;
  TraceBook book;
  CloudProvider provider;
};

TEST_F(ProviderFixture, SpotPriceTracksTrace) {
  EXPECT_EQ(provider.spot_price(0, InstanceKind::kM1Small).value(), 100);
  sim.run_until(SimTime(6000));
  EXPECT_EQ(provider.spot_price(0, InstanceKind::kM1Small).value(), 300);
}

TEST_F(ProviderFixture, SpotRequestBelowPriceRejected) {
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(99));
  EXPECT_EQ(id, 0u);
}

TEST_F(ProviderFixture, BidAboveCapThrows) {
  // 4x on-demand for us-east-1 m1.small is $0.176 == 1760 ticks.
  EXPECT_THROW(
      provider.request_spot(0, InstanceKind::kM1Small, PriceTick(1761)),
      std::invalid_argument);
}

TEST_F(ProviderFixture, StartupThenRunning) {
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(200));
  ASSERT_NE(id, 0u);
  EXPECT_EQ(provider.record(id).state, InstanceState::kPending);
  EXPECT_FALSE(provider.is_up(id));
  TimeDelta startup = provider.record(id).ready - provider.record(id).launched;
  EXPECT_GE(startup, 200);
  EXPECT_LE(startup, 700);
  sim.run_until(SimTime(700));
  EXPECT_EQ(provider.record(id).state, InstanceState::kRunning);
  EXPECT_TRUE(provider.is_up(id));
}

TEST_F(ProviderFixture, OutOfBidTerminatesAndPartialHourIsFree) {
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(200));
  sim.run_until(SimTime(6000));
  EXPECT_EQ(provider.record(id).state, InstanceState::kTerminated);
  EXPECT_EQ(provider.record(id).reason, TerminationReason::kOutOfBid);
  EXPECT_EQ(provider.record(id).terminated, SimTime(5000));
  // One full hour at price 100, the broken partial hour free.
  EXPECT_EQ(provider.total_charges(), PriceTick(100).money());
}

TEST_F(ProviderFixture, UserTerminationChargesPartialHour) {
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(400));
  sim.run_until(SimTime(30 * kMinute));
  provider.terminate(id);
  EXPECT_EQ(provider.record(id).reason, TerminationReason::kUser);
  EXPECT_EQ(provider.total_charges(), PriceTick(100).money());
  // Terminating twice is a no-op.
  provider.terminate(id);
  EXPECT_EQ(provider.total_charges(), PriceTick(100).money());
}

TEST_F(ProviderFixture, SurvivingInstanceBilledHourlyAtSpot) {
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(400));
  (void)id;
  sim.run_until(SimTime(3 * kHour));
  // Hours: [0,3600) last 100; [3600,7200) last 100 (drops back at 9000?
  // no: price 300 from 5000, so last in hour2 is 300); [7200,10800): price
  // 100 from 9000 -> last 100.  Plus the in-progress hour treatment: at
  // exactly t=3h the third hour just closed.
  Money expected =
      PriceTick(100).money() + PriceTick(300).money() + PriceTick(100).money();
  EXPECT_EQ(provider.total_charges(), expected);
}

TEST_F(ProviderFixture, OnDemandAlwaysRunsAndBillsCeil) {
  auto id = provider.launch_on_demand(0, InstanceKind::kM1Small);
  sim.run_until(SimTime(90 * kMinute));
  EXPECT_TRUE(provider.is_up(id));
  provider.terminate(id);
  EXPECT_EQ(provider.total_charges(), Money::from_dollars(0.044) * 2);
}

TEST_F(ProviderFixture, ListenerSeesLifecycle) {
  std::vector<InstanceState> states;
  provider.subscribe([&](CloudProvider::InstanceId, InstanceState st) {
    states.push_back(st);
  });
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(200));
  (void)id;
  sim.run_until(SimTime(6000));
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0], InstanceState::kRunning);
  EXPECT_EQ(states[1], InstanceState::kTerminated);
}

TEST_F(ProviderFixture, LiveInstanceCount) {
  EXPECT_EQ(provider.live_instance_count(), 0u);
  provider.request_spot(0, InstanceKind::kM1Small, PriceTick(200));
  provider.launch_on_demand(0, InstanceKind::kM1Small);
  EXPECT_EQ(provider.live_instance_count(), 2u);
  sim.run_until(SimTime(6000));  // spot one dies out-of-bid
  EXPECT_EQ(provider.live_instance_count(), 1u);
}

TEST_F(ProviderFixture, UnknownInstanceThrows) {
  EXPECT_THROW(provider.record(999), std::out_of_range);
  EXPECT_THROW(provider.terminate(999), std::out_of_range);
  EXPECT_FALSE(provider.is_up(999));
}

TEST(ProviderSla, CrashRepairCyclesApproximateSla) {
  // Long flat trace; SLA failures enabled.  Measure availability of an
  // on-demand instance over ~2 months of simulated time.
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  Simulator sim;
  SlaFailureConfig sla;
  sla.enabled = true;
  CloudProvider provider(sim, book, 7, sla);
  auto id = provider.launch_on_demand(0, InstanceKind::kM1Small);

  TimeDelta up = 0;
  SimTime horizon(8 * kWeek);
  SimTime t(kHour);  // skip startup
  for (; t < horizon; t += kMinute) {
    sim.run_until(t);
    if (provider.is_up(id)) up += kMinute;
  }
  double avail =
      static_cast<double>(up) / static_cast<double>(horizon.seconds() - kHour);
  EXPECT_NEAR(avail, 0.99, 0.006);  // FP' = 0.01 (§3.1)
}

TEST(ProviderSla, SpotInstanceAlsoCrashes) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  Simulator sim;
  SlaFailureConfig sla;
  sla.enabled = true;
  sla.mtbf_seconds = 1800;  // crash fast for the test
  sla.mttr_seconds = 600;
  CloudProvider provider(sim, book, 11, sla);
  auto id = provider.request_spot(0, InstanceKind::kM1Small, PriceTick(200));
  bool saw_down = false;
  for (SimTime t(0); t < SimTime(kDay); t += kMinute) {
    sim.run_until(t);
    if (provider.record(id).state == InstanceState::kDown) saw_down = true;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_NE(provider.record(id).state, InstanceState::kTerminated);
}

}  // namespace
}  // namespace jupiter
