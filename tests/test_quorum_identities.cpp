// Closed-form identities for quorum availability — cheap oracles that pin
// the Eq. 1 evaluator from independent directions.
#include <gtest/gtest.h>

#include "quorum/availability.hpp"
#include "util/rng.hpp"

namespace jupiter {
namespace {

std::vector<double> random_fp(Rng& rng, int n, double lo = 0.0,
                              double hi = 1.0) {
  std::vector<double> fp;
  for (int i = 0; i < n; ++i) fp.push_back(rng.uniform(lo, hi));
  return fp;
}

// threshold(n, 1): the service lives iff anyone lives -> 1 - prod(p_i).
TEST(QuorumIdentities, AnyoneAliveSystem) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    auto fp = random_fp(rng, 5);
    double prod = 1;
    for (double p : fp) prod *= p;
    EXPECT_NEAR(availability(AcceptanceSet::threshold(5, 1), fp), 1 - prod,
                1e-12);
  }
}

// threshold(n, n): everyone must live -> prod(1 - p_i).
TEST(QuorumIdentities, EveryoneAliveSystem) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    auto fp = random_fp(rng, 4);
    double prod = 1;
    for (double p : fp) prod *= (1 - p);
    EXPECT_NEAR(availability(AcceptanceSet::threshold(4, 4), fp), prod,
                1e-12);
  }
}

// Complement symmetry of majorities over odd n: A(p) + A(1-p) == 1, since
// "at least k of 2k-1 alive" and "at least k of 2k-1 dead" partition.
TEST(QuorumIdentities, MajorityComplementSymmetry) {
  Rng rng(3);
  for (int n : {3, 5, 7}) {
    auto fp = random_fp(rng, n);
    std::vector<double> flipped;
    for (double p : fp) flipped.push_back(1 - p);
    AcceptanceSet maj = AcceptanceSet::majority(n);
    EXPECT_NEAR(availability(maj, fp) + availability(maj, flipped), 1.0,
                1e-12)
        << n;
  }
}

// Monotonicity: lowering any node's failure probability never hurts.
TEST(QuorumIdentities, MonotoneInNodeReliability) {
  Rng rng(4);
  for (const auto& sys :
       {AcceptanceSet::majority(5), AcceptanceSet::threshold(5, 4),
        AcceptanceSet::monarchy(5, 2)}) {
    auto fp = random_fp(rng, 5, 0.05, 0.95);
    double before = availability(sys, fp);
    for (int i = 0; i < 5; ++i) {
      auto better = fp;
      better[static_cast<std::size_t>(i)] *= 0.5;
      EXPECT_GE(availability(sys, better) + 1e-12, before);
    }
  }
}

// Larger quorums never increase availability (fewer accepted sets).
TEST(QuorumIdentities, ThresholdMonotoneInQuorumSize) {
  Rng rng(5);
  auto fp = random_fp(rng, 6, 0.0, 0.6);
  double prev = 1.1;
  for (int q = 1; q <= 6; ++q) {
    double a = availability(AcceptanceSet::threshold(6, q), fp);
    EXPECT_LE(a, prev + 1e-12);
    prev = a;
  }
}

// Adding a 7th and 8th... adding two nodes to a majority system with the
// same p improves availability iff p < 1/2 (classic replication folklore).
TEST(QuorumIdentities, GrowingMajorityHelpsIffReliable) {
  for (double p : {0.01, 0.1, 0.3}) {
    double five = availability_equal(5, 2, p);
    double seven = availability_equal(7, 3, p);
    EXPECT_GT(seven, five) << p;
  }
  for (double p : {0.6, 0.8}) {
    double five = availability_equal(5, 2, p);
    double seven = availability_equal(7, 3, p);
    EXPECT_LT(seven, five) << p;
  }
}

// The Eq. 1 evaluator and the Poisson-binomial DP agree on every threshold
// system with heterogeneous probabilities (cross-implementation oracle).
TEST(QuorumIdentities, DpMatchesEq1Everywhere) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    auto fp = random_fp(rng, 7);
    for (int tol = 0; tol < 7; ++tol) {
      EXPECT_NEAR(availability_tolerate(fp, tol),
                  availability(AcceptanceSet::threshold(7, 7 - tol), fp),
                  1e-12);
    }
  }
}

// Weighted system with one dominating weight behaves as a monarchy.
TEST(QuorumIdentities, DominatingWeightIsMonarchy) {
  double w[] = {10, 1, 1, 1, 1};
  Rng rng(7);
  auto fp = random_fp(rng, 5);
  EXPECT_NEAR(availability(AcceptanceSet::weighted(w), fp),
              availability(AcceptanceSet::monarchy(5, 0), fp), 1e-12);
}

}  // namespace
}  // namespace jupiter
