#include "ec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include "ec/cpu_dispatch.hpp"
#include "util/rng.hpp"

namespace jupiter {
namespace {

std::vector<std::uint8_t> random_data(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> d(n);
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
  return d;
}

TEST(ReedSolomon, Theta35Shape) {
  ReedSolomon rs(3, 5);
  EXPECT_EQ(rs.data_chunks(), 3);
  EXPECT_EQ(rs.total_chunks(), 5);
  EXPECT_EQ(rs.parity_chunks(), 2);
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 5), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(6, 5), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(3, 256), std::invalid_argument);
}

TEST(ReedSolomon, SystematicPrefixIsData) {
  ReedSolomon rs(3, 5);
  Rng rng(1);
  auto data = random_data(300, rng);
  auto chunks = rs.encode(data);
  ASSERT_EQ(chunks.size(), 5u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(chunks[0][i], data[i]);
    EXPECT_EQ(chunks[1][i], data[100 + i]);
    EXPECT_EQ(chunks[2][i], data[200 + i]);
  }
}

// The any-m-of-n guarantee, exhaustively for theta(3,5): all C(5,3) = 10
// subsets reconstruct the original data.
TEST(ReedSolomon, EveryTripleReconstructsTheta35) {
  ReedSolomon rs(3, 5);
  Rng rng(2);
  auto data = random_data(299, rng);  // odd size exercises padding
  auto chunks = rs.encode(data);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      for (int c = b + 1; c < 5; ++c) {
        auto out = rs.decode(
            {{a, chunks[static_cast<std::size_t>(a)]},
             {b, chunks[static_cast<std::size_t>(b)]},
             {c, chunks[static_cast<std::size_t>(c)]}},
            data.size());
        ASSERT_TRUE(out.has_value()) << a << b << c;
        EXPECT_EQ(*out, data) << a << b << c;
      }
    }
  }
}

TEST(ReedSolomon, FewerThanMChunksFails) {
  ReedSolomon rs(3, 5);
  Rng rng(3);
  auto chunks = rs.encode(random_data(30, rng));
  EXPECT_EQ(rs.reconstruct({{0, chunks[0]}, {4, chunks[4]}}), std::nullopt);
  // Duplicates do not count twice.
  EXPECT_EQ(rs.reconstruct({{0, chunks[0]}, {0, chunks[0]}, {0, chunks[0]}}),
            std::nullopt);
}

TEST(ReedSolomon, ExtraChunksAreFine) {
  ReedSolomon rs(2, 4);
  Rng rng(4);
  auto data = random_data(64, rng);
  auto chunks = rs.encode(data);
  auto out = rs.decode(
      {{3, chunks[3]}, {1, chunks[1]}, {0, chunks[0]}, {2, chunks[2]}},
      data.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, ChunkIndexOutOfRangeThrows) {
  ReedSolomon rs(2, 4);
  Chunk c(8, 0);
  EXPECT_THROW(rs.reconstruct({{4, c}, {0, c}}), std::out_of_range);
  EXPECT_THROW(rs.reconstruct({{-1, c}, {0, c}}), std::out_of_range);
}

TEST(ReedSolomon, UnequalChunkSizesThrow) {
  ReedSolomon rs(2, 3);
  EXPECT_THROW(rs.encode_chunks({Chunk(4, 0), Chunk(5, 0)}),
               std::invalid_argument);
  EXPECT_THROW(
      rs.reconstruct({{0, Chunk(4, 0)}, {1, Chunk(5, 0)}}),
      std::invalid_argument);
}

TEST(ReedSolomon, EmptyDataStillEncodes) {
  ReedSolomon rs(3, 5);
  auto chunks = rs.encode({});
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks[0].size(), 1u);  // non-empty minimum chunk
  auto out = rs.decode({{2, chunks[2]}, {3, chunks[3]}, {4, chunks[4]}}, 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(ReedSolomon, TrivialCodes) {
  Rng rng(5);
  auto data = random_data(40, rng);
  // theta(1, 3): pure replication of one chunk.
  ReedSolomon rep(1, 3);
  auto chunks = rep.encode(data);
  for (const auto& c : chunks) EXPECT_EQ(c, chunks[0]);
  // theta(n, n): striping with no parity.
  ReedSolomon stripe(4, 4);
  auto s = stripe.encode(data);
  auto out = stripe.decode({{0, s[0]}, {1, s[1]}, {2, s[2]}, {3, s[3]}},
                           data.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

// Encode -> erase -> decode round-trip over *every* erasure pattern of
// theta(3, 5) (all surviving subsets of size >= m), on every dispatch tier.
// The payload crosses the parallel-shard threshold so the sharded path is
// exercised too; chunks must be bit-identical across tiers.
TEST(ReedSolomon, EveryErasurePatternEveryTier) {
  ReedSolomon rs(3, 5);
  Rng rng(6);
  auto data = random_data(900 * 1024 + 7, rng);  // > 2 shards per chunk
  std::vector<std::vector<Chunk>> per_tier;
  for (GfTier tier : gf_supported_tiers()) {
    GfTierOverride ov(tier);
    per_tier.push_back(rs.encode(data));
    ASSERT_EQ(per_tier.back(), per_tier.front())
        << "encode differs on tier " << gf_tier_name(tier);
  }
  const auto& chunks = per_tier.front();
  for (int pattern = 0; pattern < (1 << 5); ++pattern) {
    if (__builtin_popcount(static_cast<unsigned>(pattern)) < 3) continue;
    std::vector<std::pair<int, Chunk>> have;
    for (int i = 0; i < 5; ++i) {
      if (pattern & (1 << i)) have.emplace_back(i, chunks[static_cast<std::size_t>(i)]);
    }
    std::optional<std::vector<std::uint8_t>> first;
    for (GfTier tier : gf_supported_tiers()) {
      GfTierOverride ov(tier);
      auto out = rs.decode(have, data.size());
      ASSERT_TRUE(out.has_value()) << "pattern " << pattern;
      ASSERT_EQ(*out, data)
          << "pattern " << pattern << " tier " << gf_tier_name(tier);
      if (!first) first = out;
      ASSERT_EQ(*out, *first);
    }
  }
}

// Repeated degraded reads with the same surviving set must invert the
// decode matrix once (memoized by erasure-pattern bitmask); the pure-data
// fast path must not populate the cache at all.
TEST(ReedSolomon, DecodeMatrixMemoized) {
  ReedSolomon rs(3, 5);
  Rng rng(7);
  auto data = random_data(333, rng);
  auto chunks = rs.encode(data);
  EXPECT_EQ(rs.decode_cache_size(), 0u);

  auto all_data = rs.decode({{0, chunks[0]}, {1, chunks[1]}, {2, chunks[2]}},
                            data.size());
  ASSERT_TRUE(all_data.has_value());
  EXPECT_EQ(*all_data, data);
  EXPECT_EQ(rs.decode_cache_size(), 0u);  // identity fast path, no invert

  for (int repeat = 0; repeat < 3; ++repeat) {
    auto out = rs.decode({{1, chunks[1]}, {3, chunks[3]}, {4, chunks[4]}},
                         data.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
    EXPECT_EQ(rs.decode_cache_size(), 1u);
  }
  // Supplying the same survivors in a different order hits the same entry.
  auto out = rs.decode({{4, chunks[4]}, {1, chunks[1]}, {3, chunks[3]}},
                       data.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
  EXPECT_EQ(rs.decode_cache_size(), 1u);
  // A different erasure pattern adds a second entry.
  auto out2 = rs.decode({{0, chunks[0]}, {2, chunks[2]}, {4, chunks[4]}},
                        data.size());
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(*out2, data);
  EXPECT_EQ(rs.decode_cache_size(), 2u);
}

TEST(ReedSolomon, SharedInstancesAreMemoized) {
  const ReedSolomon& a = ReedSolomon::shared(3, 5);
  const ReedSolomon& b = ReedSolomon::shared(3, 5);
  const ReedSolomon& c = ReedSolomon::shared(2, 3);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(static_cast<const void*>(&a), static_cast<const void*>(&c));
  // Shared and fresh instances code identically.
  ReedSolomon fresh(3, 5);
  Rng rng(8);
  auto data = random_data(512, rng);
  EXPECT_EQ(a.encode(data), fresh.encode(data));
}

struct RsCase {
  int m;
  int n;
  std::size_t size;
};

class RsSweep : public ::testing::TestWithParam<RsCase> {};

// Property sweep: random erasures of n-m chunks always reconstruct.
TEST_P(RsSweep, RandomErasuresReconstruct) {
  auto [m, n, size] = GetParam();
  ReedSolomon rs(m, n);
  Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + size));
  auto data = random_data(size, rng);
  auto chunks = rs.encode(data);
  for (int trial = 0; trial < 10; ++trial) {
    // Pick a random m-subset of surviving chunks.
    std::vector<int> alive;
    for (int i = 0; i < n; ++i) alive.push_back(i);
    for (int i = n - 1; i > 0; --i) {
      std::swap(alive[static_cast<std::size_t>(i)],
                alive[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    }
    std::vector<std::pair<int, Chunk>> have;
    for (int i = 0; i < m; ++i) {
      have.emplace_back(alive[static_cast<std::size_t>(i)],
                        chunks[static_cast<std::size_t>(
                            alive[static_cast<std::size_t>(i)])]);
    }
    auto out = rs.decode(have, data.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RsSweep,
    ::testing::Values(RsCase{1, 2, 17}, RsCase{2, 3, 64}, RsCase{3, 5, 1000},
                      RsCase{3, 7, 123}, RsCase{4, 6, 4096},
                      RsCase{5, 9, 333}, RsCase{8, 12, 64},
                      RsCase{10, 14, 2048}));

}  // namespace
}  // namespace jupiter
