#include "cloud/region.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jupiter {
namespace {

TEST(Regions, Table1Counts) {
  const auto& regions = ec2_regions();
  ASSERT_EQ(regions.size(), 9u);  // Table 1 rows
  int total_azs = 0;
  for (const auto& r : regions) total_azs += r.az_count;
  EXPECT_EQ(total_azs, 24);  // 4+3+3+3+2+2+3+2+2
}

TEST(Regions, Table1SpecificRows) {
  const auto& regions = ec2_regions();
  EXPECT_EQ(regions[0].name, "us-east-1");
  EXPECT_EQ(regions[0].location, "Virginia");
  EXPECT_EQ(regions[0].az_count, 4);
  EXPECT_EQ(regions[8].name, "sa-east-1");
  EXPECT_EQ(regions[8].location, "Sao Paulo");
  EXPECT_EQ(regions[8].az_count, 2);
}

TEST(Zones, FlattenedNamesAndOrder) {
  const auto& zones = all_zones();
  ASSERT_EQ(zones.size(), 24u);
  EXPECT_EQ(zones[0].name, "us-east-1a");
  EXPECT_EQ(zones[3].name, "us-east-1d");
  EXPECT_EQ(zones[4].name, "us-west-2a");
  EXPECT_EQ(zones[23].name, "sa-east-1b");
}

TEST(Zones, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& z : all_zones()) names.insert(z.name);
  EXPECT_EQ(names.size(), 24u);
}

TEST(Zones, LookupByName) {
  EXPECT_EQ(zone_index_by_name("us-east-1a"), 0);
  EXPECT_EQ(zone_index_by_name("sa-east-1b"), 23);
  EXPECT_EQ(zone_index_by_name("mars-central-1a"), -1);
}

TEST(ExperimentZones, SeventeenDistinctValidZones) {
  const auto& subset = experiment_zone_indices();
  ASSERT_EQ(subset.size(), 17u);  // §5.2
  std::set<int> uniq(subset.begin(), subset.end());
  EXPECT_EQ(uniq.size(), 17u);
  for (int z : subset) {
    EXPECT_GE(z, 0);
    EXPECT_LT(z, 24);
  }
}

TEST(ExperimentZones, AtMostOnePerAzAndSpreadAcrossRegions) {
  const auto& subset = experiment_zone_indices();
  std::set<int> regions;
  for (int z : subset) {
    regions.insert(all_zones()[static_cast<std::size_t>(z)].region);
  }
  // Every region contributes at least one zone.
  EXPECT_EQ(regions.size(), 9u);
}

TEST(Startup, RegionMeansInMaoHumphreyBand) {
  for (int r = 0; r < 9; ++r) {
    double mean = region_startup_mean_seconds(r);
    EXPECT_GE(mean, 200.0);
    EXPECT_LE(mean, 700.0);
  }
  EXPECT_THROW(region_startup_mean_seconds(9), std::out_of_range);
  EXPECT_THROW(region_startup_mean_seconds(-1), std::out_of_range);
}

}  // namespace
}  // namespace jupiter
