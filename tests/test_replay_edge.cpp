// Replay-engine edge cases: partial final intervals, bid-below-price
// relaunches, on-demand/spot mixes, and holdings surviving many intervals.
#include <gtest/gtest.h>

#include "replay/replay_engine.hpp"

namespace jupiter {
namespace {

class FixedStrategy : public BiddingStrategy {
 public:
  explicit FixedStrategy(StrategyDecision d) : d_(std::move(d)) {}
  std::string name() const override { return "fixed"; }
  StrategyDecision decide(const MarketSnapshot&, SimTime,
                          const std::vector<ZoneBid>&) override {
    return d_;
  }

 private:
  StrategyDecision d_;
};

TraceBook flat_book(int price) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(price));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  return book;
}

ReplayConfig base_config(TimeDelta interval, TimeDelta duration) {
  ReplayConfig cfg;
  cfg.spec = ServiceSpec::lock_service();
  cfg.spec.baseline_nodes = 1;
  cfg.interval = interval;
  cfg.replay_start = SimTime(0);
  cfg.replay_end = SimTime(duration);
  cfg.zones = {0};
  return cfg;
}

TEST(ReplayEdge, PartialFinalIntervalBillsAndMeasures) {
  TraceBook book = flat_book(100);
  StrategyDecision d;
  d.spot_bids = {{0, PriceTick(200)}};
  FixedStrategy strat(d);
  // 2.5 hours with 1 h intervals: the last interval is half-length.
  ReplayConfig cfg = base_config(kHour, 2 * kHour + 30 * kMinute);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.decisions, 3);
  EXPECT_EQ(r.elapsed, 2 * kHour + 30 * kMinute);
  // Same instance throughout: 2 full hours + partial user-terminated hour.
  EXPECT_EQ(r.cost, PriceTick(100).money() * 3);
  EXPECT_EQ(r.downtime, 0);
}

TEST(ReplayEdge, IntervalLongerThanReplayWindow) {
  TraceBook book = flat_book(100);
  StrategyDecision d;
  d.spot_bids = {{0, PriceTick(200)}};
  FixedStrategy strat(d);
  ReplayConfig cfg = base_config(12 * kHour, 2 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.decisions, 1);
  EXPECT_EQ(r.cost, PriceTick(100).money() * 2);
}

TEST(ReplayEdge, MixedSpotAndOnDemand) {
  TraceBook book = flat_book(100);
  StrategyDecision d;
  d.spot_bids = {{0, PriceTick(200)}};
  d.on_demand_zones = {0};
  FixedStrategy strat(d);
  ReplayConfig cfg = base_config(kHour, 2 * kHour);
  cfg.spec.baseline_nodes = 2;
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.instances_launched, 2);
  EXPECT_DOUBLE_EQ(r.mean_nodes, 2.0);
  EXPECT_EQ(r.cost, PriceTick(100).money() * 2 +  // spot
                        Money::from_dollars(0.044) * 2);  // on-demand
}

TEST(ReplayEdge, PersistentUnderwaterBidNeverLaunches) {
  TraceBook book = flat_book(100);
  StrategyDecision d;
  d.spot_bids = {{0, PriceTick(10)}};
  FixedStrategy strat(d);
  ReplayConfig cfg = base_config(kHour, 5 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.instances_launched, 5);  // one doomed request per interval
  EXPECT_TRUE(r.cost.is_zero());
  EXPECT_DOUBLE_EQ(r.availability(), 0.0);
  EXPECT_EQ(r.out_of_bid_events, 0);  // never ran, so never *terminated*
}

TEST(ReplayEdge, HoldingSurvivesManyIntervalsSingleInstance) {
  TraceBook book = flat_book(100);
  StrategyDecision d;
  d.spot_bids = {{0, PriceTick(200)}};
  FixedStrategy strat(d);
  ReplayConfig cfg = base_config(kHour, 48 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.instances_launched, 1);
  EXPECT_EQ(r.cost, PriceTick(100).money() * 48);
}

TEST(ReplayEdge, SeedChangesStartupDrawsOnly) {
  // With startup accounting on and mid-replay replacements, different seeds
  // may shift ready times but never billing (launch times are seed-free).
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(90 * kMinute), PriceTick(300));
  tr.append(SimTime(100 * kMinute), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  StrategyDecision d;
  d.spot_bids = {{0, PriceTick(200)}};
  ReplayConfig cfg = base_config(kHour, 6 * kHour);
  cfg.seed = 1;
  FixedStrategy s1(d);
  ReplayResult r1 = replay_strategy(book, s1, cfg);
  cfg.seed = 2;
  FixedStrategy s2(d);
  ReplayResult r2 = replay_strategy(book, s2, cfg);
  EXPECT_EQ(r1.cost, r2.cost);
  EXPECT_EQ(r1.out_of_bid_events, r2.out_of_bid_events);
}

}  // namespace
}  // namespace jupiter
