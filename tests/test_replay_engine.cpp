#include "replay/replay_engine.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

/// Strategy that replays a fixed script of decisions (one per interval).
class ScriptedStrategy : public BiddingStrategy {
 public:
  explicit ScriptedStrategy(std::vector<StrategyDecision> script)
      : script_(std::move(script)) {}
  std::string name() const override { return "Scripted"; }
  StrategyDecision decide(const MarketSnapshot&, SimTime,
                          const std::vector<ZoneBid>&) override {
    if (calls_ < script_.size()) return script_[calls_++];
    ++calls_;
    return script_.back();
  }
  std::size_t calls() const { return calls_; }

 private:
  std::vector<StrategyDecision> script_;
  std::size_t calls_ = 0;
};

StrategyDecision spot_decision(std::vector<ZoneBid> bids) {
  StrategyDecision d;
  d.spot_bids = std::move(bids);
  return d;
}

/// One flat-price zone (zone 0, 100 ticks).
TraceBook flat_book(int price = 100) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(price));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));
  return book;
}

ReplayConfig config_for(std::vector<int> zones, TimeDelta interval,
                        TimeDelta duration) {
  ReplayConfig cfg;
  cfg.spec = ServiceSpec::lock_service();
  cfg.spec.baseline_nodes = 1;
  cfg.interval = interval;
  cfg.replay_start = SimTime(0);
  cfg.replay_end = SimTime(duration);
  cfg.zones = std::move(zones);
  return cfg;
}

TEST(ReplayEngine, SteadySingleInstanceCost) {
  TraceBook book = flat_book(100);
  // One node, same bid every hour, for 3 hours: one instance, 3 hours at
  // the spot price.
  ScriptedStrategy strat(
      {spot_decision({{0, PriceTick(150)}})});
  ReplayConfig cfg = config_for({0}, kHour, 3 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.decisions, 3);
  EXPECT_EQ(r.instances_launched, 1);
  EXPECT_EQ(r.cost, PriceTick(100).money() * 3);
  EXPECT_EQ(r.downtime, 0);
  EXPECT_DOUBLE_EQ(r.availability(), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_nodes, 1.0);
}

TEST(ReplayEngine, BidChangeCausesReplacementCharge) {
  TraceBook book = flat_book(100);
  // Bid changes at the second interval: the first instance is terminated by
  // the user at the boundary; its 1 partial+complete hours charged, and the
  // replacement launches 700 s early (overlap hour billed too).
  ScriptedStrategy strat({spot_decision({{0, PriceTick(150)}}),
                          spot_decision({{0, PriceTick(160)}}),
                          spot_decision({{0, PriceTick(160)}})});
  ReplayConfig cfg = config_for({0}, kHour, 3 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.instances_launched, 2);
  // Instance A: [0, 3600) user-terminated -> 1 hour.  Instance B: launches
  // at 3600-700 = 2900, runs to 10800: 7900 s -> 3 hours charged.
  EXPECT_EQ(r.cost, PriceTick(100).money() * 4);
  EXPECT_EQ(r.downtime, 0);  // replacement was pre-launched
}

TEST(ReplayEngine, OutOfBidCreatesDowntimeUntilNextBoundary) {
  // Price jumps above the bid 30 minutes into hour 1 and stays there until
  // minute 90, dropping before the second decision.
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(30 * kMinute), PriceTick(300));
  tr.append(SimTime(90 * kMinute), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));

  ScriptedStrategy strat({spot_decision({{0, PriceTick(150)}})});
  ReplayConfig cfg = config_for({0}, kHour, 2 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  // Node dead from 1800 s to the next boundary at 3600 s; the relaunch at
  // 3600-700=2900 is still underwater (price 300 > 150) — never runs — so
  // hour 2 is fully dark... wait: at decide time 2900 the price is 300, the
  // instance never launches, and the whole second hour is downtime too.
  EXPECT_EQ(r.out_of_bid_events, 1);
  EXPECT_EQ(r.downtime, (30 + 60) * kMinute);
  // Charges: the out-of-bid partial hour is free.
  EXPECT_EQ(r.cost, Money(0));
}

TEST(ReplayEngine, RelaunchAfterPriceRecovers) {
  // Same shape, but the price recovers before the pre-launch instant.
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(30 * kMinute), PriceTick(300));
  tr.append(SimTime(45 * kMinute), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));

  ScriptedStrategy strat({spot_decision({{0, PriceTick(150)}})});
  ReplayConfig cfg = config_for({0}, kHour, 2 * kHour);
  cfg.account_startup = false;  // isolate the out-of-bid downtime
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.instances_launched, 2);
  EXPECT_EQ(r.out_of_bid_events, 1);
  // Downtime only [1800, 3600): the replacement launched at 2900 is ready
  // by the boundary (startup disabled) and joins at 3600.
  EXPECT_EQ(r.downtime, 30 * kMinute);
  // Replacement billing: launched 2900, runs to 7200: 4300 s -> 2 hours.
  EXPECT_EQ(r.cost, PriceTick(100).money() * 2);
}

TEST(ReplayEngine, QuorumMathAcrossZones) {
  // Three zones; zone 2's price spikes permanently mid-replay, killing one
  // node.  Majority of 3 = 2, so the service stays up.
  TraceBook book;
  SpotTrace flat;
  flat.append(SimTime(0), PriceTick(100));
  book.set(0, InstanceKind::kM1Small, flat);
  book.set(1, InstanceKind::kM1Small, flat);
  SpotTrace spiky;
  spiky.append(SimTime(0), PriceTick(100));
  spiky.append(SimTime(90 * kMinute), PriceTick(999));
  book.set(2, InstanceKind::kM1Small, std::move(spiky));

  ScriptedStrategy strat({spot_decision(
      {{0, PriceTick(150)}, {1, PriceTick(150)}, {2, PriceTick(150)}})});
  ReplayConfig cfg = config_for({0, 1, 2}, kHour, 3 * kHour);
  cfg.spec.baseline_nodes = 3;
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.downtime, 0);
  EXPECT_GE(r.out_of_bid_events, 1);
  EXPECT_DOUBLE_EQ(r.mean_nodes, 3.0);
}

TEST(ReplayEngine, AllNodesDownIsFullDowntime) {
  TraceBook book = flat_book(100);
  // Bid below the price: instance never runs.
  ScriptedStrategy strat({spot_decision({{0, PriceTick(50)}})});
  ReplayConfig cfg = config_for({0}, kHour, 2 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.downtime, 2 * kHour);
  EXPECT_DOUBLE_EQ(r.availability(), 0.0);
  EXPECT_TRUE(r.cost.is_zero());
}

TEST(ReplayEngine, EmptyDecisionCountsAsDowntime) {
  TraceBook book = flat_book(100);
  ScriptedStrategy strat({StrategyDecision{}});
  ReplayConfig cfg = config_for({0}, kHour, kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.downtime, kHour);
}

TEST(ReplayEngine, OnDemandNodesBillCeilHours) {
  TraceBook book = flat_book(100);
  StrategyDecision d;
  d.on_demand_zones = {0};
  ScriptedStrategy strat({d});
  ReplayConfig cfg = config_for({0}, kHour, 2 * kHour + 30 * kMinute);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.downtime, 0);
  // us-east-1 m1.small: $0.044/h, 2.5 h -> 3 hours billed.
  EXPECT_EQ(r.cost, Money::from_dollars(0.044) * 3);
}

TEST(ReplayEngine, StartupCountsWithinLaterIntervals) {
  TraceBook book = flat_book(100);
  // Switch zone... only one zone; change bid each interval to force a
  // replacement; startup is drawn in [200, 700] but the pre-launch lead of
  // 700 s always covers it: no downtime.
  ScriptedStrategy strat({spot_decision({{0, PriceTick(150)}}),
                          spot_decision({{0, PriceTick(151)}}),
                          spot_decision({{0, PriceTick(152)}})});
  ReplayConfig cfg = config_for({0}, kHour, 3 * kHour);
  cfg.account_startup = true;
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_EQ(r.downtime, 0);
  EXPECT_EQ(r.instances_launched, 3);
}

TEST(ReplayEngine, MeanNodesAveragesAcrossIntervals) {
  TraceBook book = flat_book(100);
  ScriptedStrategy strat({spot_decision({{0, PriceTick(150)}}),
                          StrategyDecision{},
                          spot_decision({{0, PriceTick(150)}})});
  ReplayConfig cfg = config_for({0}, kHour, 3 * kHour);
  ReplayResult r = replay_strategy(book, strat, cfg);
  EXPECT_NEAR(r.mean_nodes, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace jupiter
