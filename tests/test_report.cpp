#include "replay/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace jupiter {
namespace {

std::vector<SweepCell> sample_cells() {
  ReplayResult a;
  a.cost = Money::from_dollars(77.30);
  a.downtime = 0;
  a.elapsed = 11 * kWeek;
  ReplayResult b;
  b.cost = Money::from_dollars(58.44);
  b.downtime = 8 * kHour;
  b.elapsed = 11 * kWeek;
  b.out_of_bid_events = 300;
  return {
      SweepCell{"Jupiter", kHour, a},
      SweepCell{"Jupiter", 6 * kHour, a},
      SweepCell{"Extra(0,0.2)", kHour, b},
      SweepCell{"Extra(0,0.2)", 6 * kHour, b},
  };
}

TEST(Report, Percent) {
  EXPECT_EQ(percent(0.8123), "81.23%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.005, 1), "0.5%");
}

TEST(Report, CostSweepContainsAllCells) {
  std::ostringstream os;
  print_cost_sweep(os, "Figure 6", sample_cells(),
                   Money::from_dollars(406.56));
  std::string out = os.str();
  EXPECT_NE(out.find("Figure 6"), std::string::npos);
  EXPECT_NE(out.find("Jupiter"), std::string::npos);
  EXPECT_NE(out.find("Extra(0,0.2)"), std::string::npos);
  EXPECT_NE(out.find("$77.3000"), std::string::npos);
  EXPECT_NE(out.find("$406.5600"), std::string::npos);
  EXPECT_NE(out.find("1h"), std::string::npos);
  EXPECT_NE(out.find("6h"), std::string::npos);
}

TEST(Report, AvailabilitySweepShowsDowntime) {
  std::ostringstream os;
  print_availability_sweep(os, "Figure 7", sample_cells());
  std::string out = os.str();
  EXPECT_NE(out.find("1.000000"), std::string::npos);   // Jupiter
  EXPECT_NE(out.find("0.995671"), std::string::npos);   // 8h / 11 weeks
}

TEST(Report, FeasibilityTable) {
  std::ostringstream os;
  print_feasibility(os, {FeasibilityBar{"lock-service", "Jupiter",
                                        Money::from_dollars(6.91), 1.0}});
  std::string out = os.str();
  EXPECT_NE(out.find("lock-service"), std::string::npos);
  EXPECT_NE(out.find("$6.9100"), std::string::npos);
}

TEST(Report, CsvRoundTripsThroughReader) {
  std::ostringstream os;
  sweep_to_csv(os, sample_cells());
  std::istringstream is(os.str());
  auto rows = read_csv(is);
  ASSERT_EQ(rows.size(), 5u);  // header + 4 cells
  EXPECT_EQ(rows[0][0], "strategy");
  EXPECT_EQ(rows[1][0], "Jupiter");
  EXPECT_EQ(rows[1][1], "1");
  // availability column parses as a number in [0, 1].
  double avail = std::stod(rows[3][3]);
  EXPECT_GT(avail, 0.99);
  EXPECT_LT(avail, 1.0);
}

TEST(Report, MissingCellsRenderDash) {
  std::vector<SweepCell> cells = sample_cells();
  cells.pop_back();  // Extra has no 6h cell now
  std::ostringstream os;
  print_cost_sweep(os, "t", cells, Money(0));
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

}  // namespace
}  // namespace jupiter
