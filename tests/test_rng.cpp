#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jupiter {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(2.5, 3.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalProportions) {
  Rng rng(29);
  double w[] = {1.0, 3.0, 6.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    auto idx = rng.categorical(w);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalAllZeroWeights) {
  Rng rng(1);
  double w[] = {0.0, 0.0};
  EXPECT_EQ(rng.categorical(w), 2u);  // sentinel
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(31);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(77), p2(77);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace jupiter
