#include <gtest/gtest.h>

#include <map>

#include "paxos/group.hpp"
#include "storage/kv_store.hpp"

namespace jupiter::paxos {
namespace {

using storage::KvClient;
using storage::KvCommand;
using storage::KvOp;
using storage::KvResponse;
using storage::KvStatus;
using storage::KvStoreState;

Replica::Options rs_options() {
  Replica::Options opts;
  opts.policy.kind = QuorumPolicy::Kind::kRsPaxos;
  opts.policy.rs_m = 3;
  return opts;
}

struct RsPaxosFixture : ::testing::Test {
  RsPaxosFixture()
      : net(sim, 31),
        group(sim, net, rs_options(),
              [this](NodeId id) {
                auto sm = std::make_unique<KvStoreState>();
                sms[id] = sm.get();
                return sm;
              },
              777) {}

  void bootstrap(int n = 5) {
    group.bootstrap(n);
    sim.run_until(sim.now() + 120);
  }

  NodeId wait_for_leader(TimeDelta budget = 600) {
    SimTime deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      if (NodeId lead = group.leader_id(); lead >= 0) return lead;
      sim.run_until(sim.now() + 5);
    }
    return group.leader_id();
  }

  bool put(const std::string& key, const std::string& value) {
    KvClient client(group);
    bool done = false, ok = false;
    std::vector<std::uint8_t> bytes(value.begin(), value.end());
    client.put(key, bytes, [&](KvResponse r) {
      done = true;
      ok = r.status == KvStatus::kOk;
    });
    sim.run_until(sim.now() + 200);
    return done && ok;
  }

  Simulator sim;
  SimNetwork net;
  std::map<NodeId, KvStoreState*> sms;
  Group group;
};

TEST_F(RsPaxosFixture, QuorumIsFourOfFive) {
  QuorumPolicy policy = rs_options().policy;
  EXPECT_EQ(policy.quorum(5), 4);  // ceil((5+3)/2) — §5.1.2
  EXPECT_EQ(policy.quorum(7), 5);
  EXPECT_TRUE(policy.coded());
}

TEST_F(RsPaxosFixture, PutCommitsAndLeaderServesReads) {
  bootstrap();
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  ASSERT_TRUE(put("k", "hello-rs-paxos"));
  auto v = sms[lead]->get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(v->begin(), v->end()), "hello-rs-paxos");
}

TEST_F(RsPaxosFixture, FollowersStoreChunksNotFullValues) {
  bootstrap();
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  std::string big(3000, 'z');
  ASSERT_TRUE(put("big", big));
  for (NodeId id : group.node_ids()) {
    if (id == lead) continue;
    // Followers hold chunk logs; each chunk is ~1/3 of the command.
    ASSERT_GE(sms[id]->chunk_count(), 1u) << "follower " << id;
    EXPECT_LT(sms[id]->chunk_bytes(), big.size()) << "follower " << id;
    EXPECT_GT(sms[id]->chunk_bytes(), big.size() / 5) << "follower " << id;
    // And no materialized key-value state.
    EXPECT_EQ(sms[id]->keys(), 0u);
  }
}

TEST_F(RsPaxosFixture, NetworkCarriesLessThanFullReplication) {
  bootstrap();
  ASSERT_GE(wait_for_leader(), 0);
  std::string big(6000, 'q');
  std::uint64_t before = net.value_bytes_sent();
  ASSERT_TRUE(put("big", big));
  std::uint64_t sent = net.value_bytes_sent() - before;
  // Full replication would ship ~n * size twice (accept + chosen):
  // ~60 KB.  RS-Paxos ships chunks of size/3: ~20 KB.
  EXPECT_LT(sent, 36000u);
  EXPECT_GT(sent, 6000u);
}

TEST_F(RsPaxosFixture, AnyThreeChunkLogsReconstructTheStore) {
  bootstrap();
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  ASSERT_TRUE(put("a", "alpha"));
  ASSERT_TRUE(put("b", "bravo"));
  ASSERT_TRUE(put("c", "charlie"));
  sim.run_until(sim.now() + 300);

  std::vector<const KvStoreState*> followers;
  for (NodeId id : group.node_ids()) {
    if (id != lead && followers.size() < 3) followers.push_back(sms[id]);
  }
  ASSERT_EQ(followers.size(), 3u);
  KvStoreState recovered;
  std::size_t n = KvStoreState::reconstruct_into(followers, 3, recovered);
  EXPECT_EQ(n, 3u);
  auto v = recovered.get("b");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(v->begin(), v->end()), "bravo");
}

TEST_F(RsPaxosFixture, ToleratesExactlyOneFailure) {
  bootstrap();
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  // One non-leader crash: quorum of 4 still reachable.
  for (NodeId id : group.node_ids()) {
    if (id != lead) {
      group.crash(id);
      break;
    }
  }
  EXPECT_TRUE(put("k1", "survives-one"));
  // A second crash drops below the 4-node quorum: no progress.
  for (NodeId id : group.node_ids()) {
    if (id != lead && group.replica(id).alive()) {
      group.crash(id);
      break;
    }
  }
  EXPECT_FALSE(put("k2", "needs-four"));
}

TEST_F(RsPaxosFixture, LeaderFailoverRecoversCodedValue) {
  bootstrap();
  NodeId lead = wait_for_leader();
  ASSERT_GE(lead, 0);
  ASSERT_TRUE(put("k", "precious"));
  sim.run_until(sim.now() + 120);
  group.crash(lead);
  NodeId new_lead = -1;
  SimTime deadline = sim.now() + 900;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + 10);
    new_lead = group.leader_id();
    if (new_lead >= 0 && new_lead != lead) break;
  }
  ASSERT_GE(new_lead, 0);
  ASSERT_NE(new_lead, lead);
  // Recovery reconstructed the chosen command from >= m chunks, so the new
  // leader's materialized store has the key.
  sim.run_until(sim.now() + 300);
  auto v = sms[new_lead]->get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(v->begin(), v->end()), "precious");
  // And the store keeps accepting writes.
  EXPECT_TRUE(put("k2", "after-failover"));
}

}  // namespace
}  // namespace jupiter::paxos
