// Larger deployments: 7-node clusters for both protocols, matching the
// paper's observation that Paxos groups are "usually 5 or 7" and that
// performance scales by running multiple groups.
#include <gtest/gtest.h>

#include <map>

#include "paxos/group.hpp"
#include "storage/kv_store.hpp"

namespace jupiter::paxos {
namespace {

struct SevenNodeCluster {
  explicit SevenNodeCluster(QuorumPolicy policy, std::uint64_t seed)
      : net(sim, seed) {
    Replica::Options opts;
    opts.policy = policy;
    group = std::make_unique<Group>(
        sim, net, opts,
        [this](NodeId id) {
          auto sm = std::make_unique<storage::KvStoreState>();
          sms[id] = sm.get();
          return sm;
        },
        seed + 1);
    group->bootstrap(7);
    sim.run_until(sim.now() + 300);
  }

  NodeId leader() {
    SimTime deadline = sim.now() + 600;
    while (sim.now() < deadline) {
      if (NodeId l = group->leader_id(); l >= 0) return l;
      sim.run_until(sim.now() + 5);
    }
    return group->leader_id();
  }

  bool put(const std::string& key, const std::string& value) {
    storage::KvClient client(*group);
    bool ok = false;
    client.put(key, {value.begin(), value.end()},
               [&ok](storage::KvResponse r) {
                 ok = r.status == storage::KvStatus::kOk;
               });
    sim.run_until(sim.now() + 300);
    return ok;
  }

  void crash_followers(int count) {
    NodeId lead = group->leader_id();
    int crashed = 0;
    for (NodeId id : group->node_ids()) {
      if (id != lead && crashed < count && group->replica(id).alive()) {
        group->crash(id);
        ++crashed;
      }
    }
  }

  Simulator sim;
  SimNetwork net;
  std::map<NodeId, storage::KvStoreState*> sms;
  std::unique_ptr<Group> group;
};

TEST(SevenNodes, ClassicToleratesThreeFailures) {
  SevenNodeCluster c(QuorumPolicy{}, 501);
  ASSERT_GE(c.leader(), 0);
  c.crash_followers(3);
  EXPECT_TRUE(c.put("k", "with-4-of-7"));
  c.crash_followers(1);  // fourth failure: below majority
  EXPECT_FALSE(c.put("k2", "with-3-of-7"));
}

TEST(SevenNodes, RsPaxos37ToleratesTwoFailures) {
  QuorumPolicy rs;
  rs.kind = QuorumPolicy::Kind::kRsPaxos;
  rs.rs_m = 3;
  ASSERT_EQ(rs.quorum(7), 5);  // ceil((7+3)/2)
  SevenNodeCluster c(rs, 502);
  ASSERT_GE(c.leader(), 0);
  c.crash_followers(2);
  EXPECT_TRUE(c.put("k", "with-5-of-7"));
  c.crash_followers(1);  // third failure: below the RS quorum
  EXPECT_FALSE(c.put("k2", "with-4-of-7"));
}

TEST(SevenNodes, RsPaxos37ChunksAreSevenths) {
  QuorumPolicy rs;
  rs.kind = QuorumPolicy::Kind::kRsPaxos;
  rs.rs_m = 3;
  SevenNodeCluster c(rs, 503);
  NodeId lead = c.leader();
  ASSERT_GE(lead, 0);
  std::string big(3000, 'x');
  ASSERT_TRUE(c.put("big", big));
  for (NodeId id : c.group->node_ids()) {
    if (id == lead) continue;
    ASSERT_GE(c.sms[id]->chunk_count(), 1u);
    // theta(3,7): chunk ~ size/3 regardless of n.
    EXPECT_LT(c.sms[id]->chunk_bytes(), big.size() / 2);
  }
  // Any 3 of the followers rebuild the store.
  std::vector<const storage::KvStoreState*> followers;
  for (NodeId id : c.group->node_ids()) {
    if (id != lead && followers.size() < 3) followers.push_back(c.sms[id]);
  }
  storage::KvStoreState out;
  EXPECT_EQ(storage::KvStoreState::reconstruct_into(followers, 3, out), 1u);
  EXPECT_TRUE(out.get("big").has_value());
}

TEST(MultiGroup, IndependentGroupsShareNothing) {
  // "Performance requirements can be satisfied by launching multiple Paxos
  // groups" (§3.2): two groups on disjoint node ids over one network.
  Simulator sim;
  SimNetwork net(sim, 504);
  auto factory = [](NodeId) {
    return std::make_unique<storage::KvStoreState>();
  };
  Group g1(sim, net, Replica::Options{}, factory, 505);
  g1.bootstrap(3);  // nodes 0..2
  // Second group with manually offset ids via add-node-style construction
  // is not supported by bootstrap; emulate with another network instead.
  SimNetwork net2(sim, 506);
  Group g2(sim, net2, Replica::Options{}, factory, 507);
  g2.bootstrap(3);
  sim.run_until(sim.now() + 300);
  ASSERT_GE(g1.leader_id(), 0);
  ASSERT_GE(g2.leader_id(), 0);

  storage::KvClient c1(g1), c2(g2);
  bool ok1 = false, ok2 = false;
  c1.put("k", {1}, [&](storage::KvResponse r) {
    ok1 = r.status == storage::KvStatus::kOk;
  });
  c2.put("k", {2}, [&](storage::KvResponse r) {
    ok2 = r.status == storage::KvStatus::kOk;
  });
  sim.run_until(sim.now() + 300);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
}

}  // namespace
}  // namespace jupiter::paxos
