#include "market/semi_markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "market/price_process.hpp"

namespace jupiter {
namespace {

/// Two-state chain: cheap (price 10) <-> expensive (price 20), with
/// deterministic or mixed sojourns — small enough to verify by hand.
SemiMarkovChain two_state(int k_up = 5, int k_down = 3) {
  SemiMarkovChain chain({PriceTick(10), PriceTick(20)});
  chain.add_transition(0, 1, k_up, 1.0);
  chain.add_transition(1, 0, k_down, 1.0);
  chain.normalize_rows();
  return chain;
}

TEST(SemiMarkov, StateSpaceSortedUnique) {
  SemiMarkovChain chain({PriceTick(30), PriceTick(10), PriceTick(30)});
  ASSERT_EQ(chain.state_count(), 2);
  EXPECT_EQ(chain.state_price(0).value(), 10);
  EXPECT_EQ(chain.state_price(1).value(), 30);
}

TEST(SemiMarkov, FindAndNearestState) {
  SemiMarkovChain chain({PriceTick(10), PriceTick(20), PriceTick(40)});
  EXPECT_EQ(chain.find_state(PriceTick(20)), 1);
  EXPECT_EQ(chain.find_state(PriceTick(25)), -1);
  EXPECT_EQ(chain.nearest_state(PriceTick(24)), 1);
  EXPECT_EQ(chain.nearest_state(PriceTick(31)), 2);
  EXPECT_EQ(chain.nearest_state(PriceTick(30)), 1);  // tie goes low
  EXPECT_EQ(chain.nearest_state(PriceTick(0)), 0);
  EXPECT_EQ(chain.nearest_state(PriceTick(1000)), 2);
}

TEST(SemiMarkov, NormalizeMakesRowsStochastic) {
  SemiMarkovChain chain({PriceTick(1), PriceTick(2)});
  chain.add_transition(0, 1, 2, 3.0);
  chain.add_transition(0, 1, 4, 1.0);
  chain.normalize_rows();
  EXPECT_NEAR(chain.row_mass(0), 1.0, 1e-12);
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_EQ(chain.row_mass(1), 0.0);
}

TEST(SemiMarkov, SurvivalFunction) {
  SemiMarkovChain chain = two_state(5, 3);
  // State 0 jumps after exactly 5 minutes.
  EXPECT_DOUBLE_EQ(chain.survival(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(chain.survival(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(chain.survival(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(chain.survival(0, 100), 0.0);
  // Negative age is clamped to "fresh".
  EXPECT_DOUBLE_EQ(chain.survival(0, -1), 1.0);
}

TEST(SemiMarkov, SurvivalMixture) {
  SemiMarkovChain chain({PriceTick(1), PriceTick(2)});
  chain.add_transition(0, 1, 2, 0.5);
  chain.add_transition(0, 1, 6, 0.5);
  chain.normalize_rows();
  EXPECT_DOUBLE_EQ(chain.survival(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(chain.survival(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(chain.survival(0, 5), 0.5);
  EXPECT_DOUBLE_EQ(chain.survival(0, 6), 0.0);
  EXPECT_DOUBLE_EQ(chain.survival_cumsum(0, 3), 1.0 + 1.0 + 0.5 + 0.5);
}

TEST(SemiMarkov, MeanSojourn) {
  SemiMarkovChain chain({PriceTick(1), PriceTick(2)});
  chain.add_transition(0, 1, 2, 0.5);
  chain.add_transition(0, 1, 6, 0.5);
  chain.normalize_rows();
  EXPECT_DOUBLE_EQ(chain.mean_sojourn(0), 4.0);
  EXPECT_TRUE(std::isinf(chain.mean_sojourn(1)));
}

TEST(SemiMarkov, EstimateRecoversCounts) {
  // Trace: 10 (2 min) -> 20 (3 min) -> 10 (2 min) -> 20 (...open)
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(10));
  tr.append(SimTime(120), PriceTick(20));
  tr.append(SimTime(300), PriceTick(10));
  tr.append(SimTime(420), PriceTick(20));
  SemiMarkovChain chain = SemiMarkovChain::estimate(tr);
  ASSERT_EQ(chain.state_count(), 2);
  // Two observed 10->20 transitions with 2-minute sojourns: q(0,1,2) = 1.
  auto row0 = chain.row(0);
  ASSERT_EQ(row0.size(), 1u);
  EXPECT_EQ(row0[0].next, 1);
  EXPECT_EQ(row0[0].sojourn, 2);
  EXPECT_DOUBLE_EQ(row0[0].prob, 1.0);
  // One 20->10 with 3-minute sojourn; the final segment is open.
  auto row1 = chain.row(1);
  ASSERT_EQ(row1.size(), 1u);
  EXPECT_EQ(row1[0].sojourn, 3);
}

TEST(SemiMarkov, EstimateClampsSubMinuteSojournsToOne) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(10));
  tr.append(SimTime(30), PriceTick(20));  // 30 s sojourn
  tr.append(SimTime(90), PriceTick(10));
  SemiMarkovChain chain = SemiMarkovChain::estimate(tr);
  EXPECT_EQ(chain.row(0)[0].sojourn, 1);
}

TEST(SemiMarkov, GenerateFollowsKernel) {
  SemiMarkovChain chain = two_state(5, 3);
  Rng rng(1);
  SpotTrace tr = chain.generate(SimTime(0), SimTime(3600), 0, rng);
  // Deterministic alternation: 10 for 5 min, 20 for 3 min, ...
  ASSERT_GE(tr.size(), 4u);
  EXPECT_EQ(tr.points()[0], (PricePoint{SimTime(0), PriceTick(10)}));
  EXPECT_EQ(tr.points()[1], (PricePoint{SimTime(300), PriceTick(20)}));
  EXPECT_EQ(tr.points()[2], (PricePoint{SimTime(480), PriceTick(10)}));
}

TEST(SemiMarkov, GenerateEstimateRoundTrip) {
  // Estimating from a long generated trace must recover the kernel.
  SemiMarkovChain truth({PriceTick(10), PriceTick(20), PriceTick(30)});
  truth.add_transition(0, 1, 4, 0.7);
  truth.add_transition(0, 2, 9, 0.3);
  truth.add_transition(1, 0, 2, 0.6);
  truth.add_transition(1, 2, 7, 0.4);
  truth.add_transition(2, 0, 3, 1.0);
  truth.normalize_rows();
  Rng rng(99);
  SpotTrace tr = truth.generate(SimTime(0), SimTime(20 * kWeek), 0, rng);
  SemiMarkovChain est = SemiMarkovChain::estimate(tr);
  ASSERT_EQ(est.state_count(), 3);
  for (int i = 0; i < 3; ++i) {
    for (const auto& t : truth.row(i)) {
      double got = 0;
      for (const auto& e : est.row(i)) {
        if (e.next == t.next && e.sojourn == t.sojourn) got = e.prob;
      }
      EXPECT_NEAR(got, t.prob, 0.02) << "state " << i;
    }
  }
}

TEST(SemiMarkov, OccupancySumsToOne) {
  SemiMarkovChain chain = two_state(5, 3);
  for (int age : {0, 2, 4}) {
    for (int horizon : {1, 7, 30, 120}) {
      auto occ = chain.average_occupancy(0, age, horizon);
      double total = std::accumulate(occ.begin(), occ.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-9) << "age " << age << " H " << horizon;
    }
  }
}

TEST(SemiMarkov, OccupancyDeterministicChainExact) {
  SemiMarkovChain chain = two_state(5, 3);
  // Fresh in state 0: minutes 1..5 in state 0? Jump happens at minute 5, so
  // occupancy: minutes 1-4 state 0, minutes 5-7 state 1 (sojourn 3), minute
  // 8 state 0.  Over H=8: state0 -> 5 minutes? Let's check: survival(0,t)
  // for t=1..4 is 1, t=5..8 is 0 -> 4 minutes.  Entries: enter 1 at t=5,
  // stays while survival(1,d): d=0..2 -> minutes 5,6,7.  Enter 0 at t=8 ->
  // minute 8.  Total state0 = 5 of 8? 4 + 1 = 5.  state1 = 3.
  auto occ = chain.average_occupancy(0, 0, 8);
  EXPECT_NEAR(occ[0], 5.0 / 8.0, 1e-12);
  EXPECT_NEAR(occ[1], 3.0 / 8.0, 1e-12);
}

TEST(SemiMarkov, AgeConditioningShiftsJump) {
  SemiMarkovChain chain = two_state(5, 3);
  // With age 4 in state 0 the jump is 1 minute away.
  auto occ = chain.average_occupancy(0, 4, 4);
  // Jump at minute 1 -> state 1 occupies minutes 1,2,3; back to 0 at min 4.
  EXPECT_NEAR(occ[1], 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(occ[0], 1.0 / 4.0, 1e-12);
}

TEST(SemiMarkov, AgeBeyondSupportClamps) {
  SemiMarkovChain chain = two_state(5, 3);
  auto occ = chain.average_occupancy(0, 1000, 4);
  double total = std::accumulate(occ.begin(), occ.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SemiMarkov, ExceedCurveMonotone) {
  SemiMarkovChain truth({PriceTick(10), PriceTick(20), PriceTick(30)});
  truth.add_transition(0, 1, 4, 0.7);
  truth.add_transition(0, 2, 9, 0.3);
  truth.add_transition(1, 0, 2, 0.6);
  truth.add_transition(1, 2, 7, 0.4);
  truth.add_transition(2, 0, 3, 1.0);
  truth.normalize_rows();
  auto exceed = truth.exceed_curve(0, 0, 60);
  for (std::size_t i = 0; i + 1 < exceed.size(); ++i) {
    EXPECT_GE(exceed[i], exceed[i + 1]);
  }
  EXPECT_DOUBLE_EQ(exceed.back(), 0.0);  // nothing above the top state
}

TEST(SemiMarkov, HitCurveMonotoneAndAboveOccupancy) {
  SemiMarkovChain truth({PriceTick(10), PriceTick(20), PriceTick(30)});
  truth.add_transition(0, 1, 4, 0.7);
  truth.add_transition(0, 2, 9, 0.3);
  truth.add_transition(1, 0, 2, 0.6);
  truth.add_transition(1, 2, 7, 0.4);
  truth.add_transition(2, 0, 3, 1.0);
  truth.normalize_rows();
  auto hit = truth.hit_curve(0, 0, 60);
  auto exceed = truth.exceed_curve(0, 0, 60);
  for (std::size_t i = 0; i + 1 < hit.size(); ++i) {
    EXPECT_GE(hit[i] + 1e-12, hit[i + 1]);
  }
  EXPECT_NEAR(hit.back(), 0.0, 1e-12);
  // First passage dominates average occupancy above the threshold.
  for (std::size_t i = 0; i < hit.size(); ++i) {
    EXPECT_GE(hit[i] + 1e-12, exceed[i]);
  }
}

TEST(SemiMarkov, HitDeterministicChainExact) {
  SemiMarkovChain chain = two_state(5, 3);
  // From fresh state 0, price hits 20 at minute 5: hit prob vs horizon.
  EXPECT_DOUBLE_EQ(chain.hit_one(0, 0, 4, 0), 0.0);
  EXPECT_DOUBLE_EQ(chain.hit_one(0, 0, 5, 0), 1.0);
  // Threshold at the top state is never exceeded.
  EXPECT_DOUBLE_EQ(chain.hit_one(0, 0, 100, 1), 0.0);
  // Aged 4 minutes: the jump is 1 minute away.
  EXPECT_DOUBLE_EQ(chain.hit_one(0, 4, 1, 0), 1.0);
}

TEST(SemiMarkov, HitProbabilityMatchesMonteCarlo) {
  SemiMarkovChain truth({PriceTick(10), PriceTick(20), PriceTick(30)});
  truth.add_transition(0, 1, 3, 0.5);
  truth.add_transition(0, 1, 8, 0.2);
  truth.add_transition(0, 2, 15, 0.3);
  truth.add_transition(1, 0, 2, 0.7);
  truth.add_transition(1, 2, 5, 0.3);
  truth.add_transition(2, 0, 4, 1.0);
  truth.normalize_rows();
  const int horizon = 40;
  double analytic = truth.hit_one(0, 0, horizon, 1);  // exceed price 20
  Rng rng(4242);
  int hits = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    int state = 0;
    int elapsed = 0;
    bool hit = false;
    while (elapsed <= horizon) {
      auto jump = truth.sample_jump(state, rng);
      ASSERT_TRUE(jump.has_value());
      elapsed += jump->sojourn;
      if (elapsed > horizon) break;
      state = jump->next;
      if (state > 1) {
        hit = true;
        break;
      }
    }
    hits += hit ? 1 : 0;
  }
  EXPECT_NEAR(analytic, static_cast<double>(hits) / trials, 0.01);
}

TEST(SemiMarkov, ExceedProbabilityMatchesMonteCarlo) {
  SemiMarkovChain truth({PriceTick(10), PriceTick(20), PriceTick(30)});
  truth.add_transition(0, 1, 3, 0.5);
  truth.add_transition(0, 1, 8, 0.2);
  truth.add_transition(0, 2, 15, 0.3);
  truth.add_transition(1, 0, 2, 0.7);
  truth.add_transition(1, 2, 5, 0.3);
  truth.add_transition(2, 0, 4, 1.0);
  truth.normalize_rows();
  const int horizon = 40;
  double analytic = truth.exceed_probability(0, 0, horizon, PriceTick(20));
  Rng rng(777);
  const int trials = 20000;
  double fraction = 0;
  for (int t = 0; t < trials; ++t) {
    SpotTrace tr = truth.generate(SimTime(0), SimTime((horizon + 1) * kMinute),
                                  0, rng);
    int above = 0;
    for (int m = 1; m <= horizon; ++m) {
      if (tr.price_at(SimTime(m * kMinute)).value() > 20) ++above;
    }
    fraction += static_cast<double>(above) / horizon;
  }
  EXPECT_NEAR(analytic, fraction / trials, 0.01);
}

TEST(SemiMarkov, MemorylessPreservesMeansAndMarginals) {
  SemiMarkovChain truth({PriceTick(10), PriceTick(20)});
  truth.add_transition(0, 1, 2, 0.5);
  truth.add_transition(0, 1, 10, 0.5);
  truth.add_transition(1, 0, 4, 1.0);
  truth.normalize_rows();
  SemiMarkovChain mem = truth.to_memoryless();
  EXPECT_NEAR(mem.mean_sojourn(0), truth.mean_sojourn(0), 0.35);
  EXPECT_NEAR(mem.row_mass(0), 1.0, 1e-9);
  // Memoryless survival is geometric: S(d) = (1-1/mu)^d.
  double p = 1.0 / truth.mean_sojourn(0);
  EXPECT_NEAR(mem.survival(0, 3), std::pow(1 - p, 3), 0.01);
}

TEST(SemiMarkov, StationaryOccupancySumsToOne) {
  SemiMarkovChain chain = two_state(5, 3);
  auto pi = chain.stationary_occupancy();
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  // Time-weighted: 5 minutes in state 0 per 3 in state 1.
  EXPECT_NEAR(pi[0], 5.0 / 8.0, 1e-6);
}

TEST(SemiMarkov, StationaryEmptyWithAbsorbingState) {
  SemiMarkovChain chain({PriceTick(1), PriceTick(2)});
  chain.add_transition(0, 1, 1, 1.0);
  chain.normalize_rows();
  EXPECT_TRUE(chain.stationary_occupancy().empty());
}

TEST(SemiMarkov, AbsorbingStateOccupiesForever) {
  SemiMarkovChain chain({PriceTick(1), PriceTick(2)});
  chain.add_transition(0, 1, 4, 1.0);
  chain.normalize_rows();
  auto occ = chain.average_occupancy(1, 0, 100);
  EXPECT_DOUBLE_EQ(occ[1], 1.0);
  EXPECT_DOUBLE_EQ(chain.hit_one(1, 0, 100, 1), 0.0);
}

TEST(SemiMarkov, UseBeforeNormalizeThrows) {
  SemiMarkovChain chain({PriceTick(1), PriceTick(2)});
  chain.add_transition(0, 1, 1, 1.0);
  EXPECT_THROW(chain.survival(0, 0), std::logic_error);
  EXPECT_THROW(chain.average_occupancy(0, 0, 10), std::logic_error);
}

}  // namespace
}  // namespace jupiter
