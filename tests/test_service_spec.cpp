#include "core/service_spec.hpp"

#include <gtest/gtest.h>

#include "quorum/availability.hpp"

namespace jupiter {
namespace {

TEST(ServiceSpec, LockServiceDefaults) {
  ServiceSpec s = ServiceSpec::lock_service();
  EXPECT_EQ(s.kind, InstanceKind::kM1Small);
  EXPECT_EQ(s.rule, QuorumRule::kMajority);
  EXPECT_EQ(s.baseline_nodes, 5);
  // 5 replicas tolerate any 2 simultaneous failures (§5.2).
  EXPECT_EQ(s.tolerate(5), 2);
  EXPECT_EQ(s.quorum(5), 3);
  EXPECT_EQ(s.min_nodes(), 1);
}

TEST(ServiceSpec, StorageServiceDefaults) {
  ServiceSpec s = ServiceSpec::storage_service();
  EXPECT_EQ(s.kind, InstanceKind::kM3Large);
  EXPECT_EQ(s.rule, QuorumRule::kErasure);
  EXPECT_EQ(s.erasure_m, 3);
  // theta(3,5) tolerates only one failure (§5.1.2).
  EXPECT_EQ(s.tolerate(5), 1);
  EXPECT_EQ(s.quorum(5), 4);
  EXPECT_EQ(s.min_nodes(), 3);
  EXPECT_EQ(s.tolerate(2), -1);  // undeployable below m
}

TEST(ServiceSpec, MajorityToleranceTable) {
  ServiceSpec s = ServiceSpec::lock_service();
  EXPECT_EQ(s.tolerate(1), 0);
  EXPECT_EQ(s.tolerate(2), 0);
  EXPECT_EQ(s.tolerate(3), 1);
  EXPECT_EQ(s.tolerate(4), 1);
  EXPECT_EQ(s.tolerate(7), 3);
  EXPECT_EQ(s.tolerate(9), 4);
}

TEST(ServiceSpec, ErasureToleranceTable) {
  ServiceSpec s = ServiceSpec::storage_service();
  EXPECT_EQ(s.tolerate(3), 0);
  EXPECT_EQ(s.tolerate(4), 0);
  EXPECT_EQ(s.tolerate(5), 1);
  EXPECT_EQ(s.tolerate(7), 2);
  EXPECT_EQ(s.tolerate(9), 3);
  // Quorums always intersect in >= m nodes: 2q - n >= m.
  for (int n = 3; n <= 12; ++n) {
    int q = s.quorum(n);
    EXPECT_GE(2 * q - n, s.erasure_m) << "n=" << n;
  }
}

TEST(ServiceSpec, TargetAvailabilityMatchesPaper) {
  EXPECT_NEAR(ServiceSpec::lock_service().target_availability(),
              0.9999901494, 1e-10);
  // Storage baseline: 5 nodes tolerating 1 failure at FP' = 0.01.
  EXPECT_NEAR(ServiceSpec::storage_service().target_availability(),
              availability_equal(5, 1, 0.01), 1e-15);
  EXPECT_LT(ServiceSpec::storage_service().target_availability(),
            ServiceSpec::lock_service().target_availability());
}

}  // namespace
}  // namespace jupiter
