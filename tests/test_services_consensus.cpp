// Service-through-consensus edge paths: lease expiry driven by simulated
// time, keep-alive cadence, KV deletes and misses, and the bidder across
// deployment-size sweeps for both quorum rules.
#include <gtest/gtest.h>

#include <map>

#include "core/online_bidder.hpp"
#include "lock/lock_service.hpp"
#include "sim/periodic.hpp"
#include "storage/kv_store.hpp"

namespace jupiter {
namespace {

struct LockCluster {
  LockCluster() : net(sim, 91) {
    group = std::make_unique<paxos::Group>(
        sim, net, paxos::Replica::Options{},
        [this](paxos::NodeId id) {
          auto sm = std::make_unique<lock::LockServiceState>();
          sms[id] = sm.get();
          return sm;
        },
        92);
    group->bootstrap(3);
    sim.run_until(sim.now() + 200);
  }
  Simulator sim;
  paxos::SimNetwork net;
  std::map<paxos::NodeId, lock::LockServiceState*> sms;
  std::unique_ptr<paxos::Group> group;
};

TEST(ServicesConsensus, LeaseExpiryThroughConsensusTime) {
  LockCluster c;
  lock::LockClient alice(*c.group, c.sim, "alice", /*lease=*/300);
  alice.open_session();
  c.sim.run_until(c.sim.now() + 60);
  alice.acquire("/l", nullptr);
  c.sim.run_until(c.sim.now() + 60);

  // Let the lease lapse, then have bob acquire: the expired lock yields.
  c.sim.run_until(c.sim.now() + 600);
  lock::LockClient bob(*c.group, c.sim, "bob", 3600);
  bob.open_session();
  c.sim.run_until(c.sim.now() + 60);
  lock::LockStatus st = lock::LockStatus::kExpired;
  bob.acquire("/l", [&](lock::LockResponse r) { st = r.status; });
  c.sim.run_until(c.sim.now() + 120);
  EXPECT_EQ(st, lock::LockStatus::kOk);
}

TEST(ServicesConsensus, KeepAliveLoopHoldsTheLock) {
  LockCluster c;
  lock::LockClient alice(*c.group, c.sim, "alice", /*lease=*/300);
  alice.open_session();
  c.sim.run_until(c.sim.now() + 60);
  alice.acquire("/l", nullptr);
  c.sim.run_until(c.sim.now() + 60);

  // Chubby-style keep-alive heartbeat at a third of the lease.
  PeriodicTask ka(c.sim, c.sim.now() + 100, 100,
                  [&](SimTime) { alice.keep_alive(); });
  c.sim.run_until(c.sim.now() + 1500);
  ka.stop();

  lock::LockClient bob(*c.group, c.sim, "bob", 3600);
  bob.open_session();
  c.sim.run_until(c.sim.now() + 60);
  lock::LockStatus st = lock::LockStatus::kOk;
  std::string owner;
  bob.acquire("/l", [&](lock::LockResponse r) {
    st = r.status;
    owner = r.owner;
  });
  c.sim.run_until(c.sim.now() + 120);
  EXPECT_EQ(st, lock::LockStatus::kHeldByOther);
  EXPECT_EQ(owner, "alice");
}

TEST(ServicesConsensus, KvDeleteAndMissThroughConsensus) {
  Simulator sim;
  paxos::SimNetwork net(sim, 93);
  std::map<paxos::NodeId, storage::KvStoreState*> sms;
  paxos::Group group(
      sim, net, paxos::Replica::Options{},
      [&](paxos::NodeId id) {
        auto sm = std::make_unique<storage::KvStoreState>();
        sms[id] = sm.get();
        return sm;
      },
      94);
  group.bootstrap(3);
  sim.run_until(sim.now() + 200);

  storage::KvClient client(group);
  storage::KvStatus status = storage::KvStatus::kError;
  client.get("ghost", [&](storage::KvResponse r) { status = r.status; });
  sim.run_until(sim.now() + 120);
  EXPECT_EQ(status, storage::KvStatus::kNotFound);

  client.put("k", {1, 2, 3}, nullptr);
  sim.run_until(sim.now() + 120);
  client.erase("k", [&](storage::KvResponse r) { status = r.status; });
  sim.run_until(sim.now() + 120);
  EXPECT_EQ(status, storage::KvStatus::kOk);
  client.get("k", [&](storage::KvResponse r) { status = r.status; });
  sim.run_until(sim.now() + 120);
  EXPECT_EQ(status, storage::KvStatus::kNotFound);
}

// Property sweep: for every quorum rule and every availability target the
// bidder's chosen deployment meets the equal-FP design bound it was built
// from.
struct BidderCase {
  QuorumRule rule;
  int baseline_nodes;
};

class BidderSweep : public ::testing::TestWithParam<BidderCase> {};

TEST_P(BidderSweep, DeploymentMeetsDesignBound) {
  auto [rule, baseline] = GetParam();
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snap;
  for (int z = 0; z < 10; ++z) {
    SemiMarkovChain chain({PriceTick(60 + z * 5), PriceTick(200 + z * 5)});
    chain.add_transition(0, 1, 240, 1.0);
    chain.add_transition(1, 0, 6, 1.0);
    chain.normalize_rows();
    models.set(z, ZoneFailureModel(std::move(chain), od));
    MarketZoneState st;
    st.zone = z;
    st.price = PriceTick(60 + z * 5);
    st.age_minutes = 0;
    st.on_demand = od;
    snap.push_back(st);
  }
  ServiceSpec spec;
  spec.rule = rule;
  spec.baseline_nodes = baseline;
  OnlineBidder bidder({.horizon_minutes = 60, .max_nodes = 9});
  BidDecision d = bidder.decide(models, snap, spec);
  ASSERT_TRUE(d.satisfies_constraint);
  EXPECT_GE(d.estimated_availability,
            spec.target_availability() - spec.epsilon);
  // Sanity on the deployment size for the rule.
  EXPECT_GE(d.nodes(), spec.min_nodes());
  int tol = spec.tolerate(d.nodes());
  EXPECT_GE(tol, spec.rule == QuorumRule::kErasure ? 0 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, BidderSweep,
    ::testing::Values(BidderCase{QuorumRule::kMajority, 3},
                      BidderCase{QuorumRule::kMajority, 5},
                      BidderCase{QuorumRule::kMajority, 7},
                      BidderCase{QuorumRule::kErasure, 5},
                      BidderCase{QuorumRule::kErasure, 7}));

}  // namespace
}  // namespace jupiter
