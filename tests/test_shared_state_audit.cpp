// SharedStateAuditor contracts (src/util/shared_state_audit): phased
// tokens catch writes from outside the owning phase, serialized tokens
// catch overlapping write scopes, AuditScope restores the prior state, a
// copied token starts fresh (ownership never transfers between objects),
// and the audited core objects actually carry tokens — so the wiring the
// fleet's determinism contract depends on cannot silently disappear.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/trace_book.hpp"
#include "core/transient_cache.hpp"
#include "util/interner.hpp"
#include "util/shared_state_audit.hpp"

namespace jupiter {
namespace {

// Every test flushes leftovers first: the violation list is process-global.
void flush() { SharedStateAuditor::drain(); }

TEST(SharedStateAudit, DisabledTokenRecordsNothing) {
  flush();
  AuditToken token("UnitProbe", AuditMode::kPhased);
  std::thread t([&] { token.acquire("test"); });
  t.join();
  token.write("test");  // foreign write, but the auditor is off
  token.release();
  AuditScope audit(AuditPolicy::kRecord);
  EXPECT_TRUE(SharedStateAuditor::drain().empty());
}

TEST(SharedStateAudit, PhasedForeignWriteCaught) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  AuditToken token("UnitProbe", AuditMode::kPhased);
  std::thread t([&] { token.acquire("UnitProbe::acquire"); });
  t.join();
  token.write("UnitProbe::poke");
  token.release();
  auto v = SharedStateAuditor::drain();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, "UnitProbe");
  EXPECT_EQ(v[0].site, "UnitProbe::poke");
  EXPECT_NE(v[0].detail.find("outside the owning phase"), std::string::npos);
}

TEST(SharedStateAudit, PhasedOwnerAndUnownedWritesClean) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  AuditToken token("UnitProbe", AuditMode::kPhased);
  token.write("unowned");  // no phase bound: any thread may write
  token.acquire("own");
  token.write("owned");
  token.release();
  token.write("unowned-again");
  EXPECT_TRUE(SharedStateAuditor::drain().empty());
}

TEST(SharedStateAudit, DoubleAcquireCaught) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  AuditToken token("UnitProbe", AuditMode::kPhased);
  std::thread t([&] { token.acquire("first"); });
  t.join();
  token.acquire("second");  // the other thread never released
  token.release();
  auto v = SharedStateAuditor::drain();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].site, "second");
  EXPECT_NE(v[0].detail.find("still owns the phase"), std::string::npos);
}

TEST(SharedStateAudit, SerializedOverlapCaught) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  AuditToken token("UnitProbe", AuditMode::kSerialized);
  std::atomic<bool> inside{false};
  std::atomic<bool> done{false};
  std::thread t([&] {
    AuditWriteScope scope(token, "holder");
    inside.store(true);
    while (!done.load()) std::this_thread::yield();
  });
  while (!inside.load()) std::this_thread::yield();
  token.write("intruder");  // overlaps the live scope on the other thread
  done.store(true);
  t.join();
  auto v = SharedStateAuditor::drain();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].site, "intruder");
  EXPECT_NE(v[0].detail.find("overlapping writes"), std::string::npos);
}

TEST(SharedStateAudit, SerializedReentryAndSequentialWritesClean) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  AuditToken token("UnitProbe", AuditMode::kSerialized);
  {
    AuditWriteScope outer(token, "outer");
    AuditWriteScope inner(token, "inner");  // same-thread reentry
  }
  token.write("later");
  std::thread t([&] { token.write("other-thread"); });  // non-overlapping
  t.join();
  EXPECT_TRUE(SharedStateAuditor::drain().empty());
}

TEST(SharedStateAudit, ScopeRestoresPriorState) {
  ASSERT_FALSE(SharedStateAuditor::enabled());
  {
    AuditScope outer(AuditPolicy::kRecord);
    EXPECT_TRUE(SharedStateAuditor::enabled());
    EXPECT_EQ(SharedStateAuditor::policy(), AuditPolicy::kRecord);
    {
      AuditScope inner(AuditPolicy::kAbort);
      EXPECT_EQ(SharedStateAuditor::policy(), AuditPolicy::kAbort);
    }
    EXPECT_TRUE(SharedStateAuditor::enabled());
    EXPECT_EQ(SharedStateAuditor::policy(), AuditPolicy::kRecord);
  }
  EXPECT_FALSE(SharedStateAuditor::enabled());
}

TEST(SharedStateAudit, TokenCopyStartsFresh) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  AuditToken original("UnitProbe", AuditMode::kPhased);
  std::thread t([&] { original.acquire("bind"); });
  t.join();
  AuditToken copy = original;
  copy.write("copy-write");  // the copy is unowned: clean
  EXPECT_TRUE(SharedStateAuditor::drain().empty());
  original.write("original-write");  // the original is still foreign-owned
  original.release();
  EXPECT_EQ(SharedStateAuditor::drain().size(), 1u);
}

TEST(SharedStateAudit, RegisteredCountsLiveTokens) {
  EXPECT_EQ(SharedStateAuditor::registered("UnitCensus"), 0u);
  {
    AuditToken a("UnitCensus", AuditMode::kPhased);
    AuditToken b("UnitCensus", AuditMode::kSerialized);
    EXPECT_EQ(SharedStateAuditor::registered("UnitCensus"), 2u);
  }
  EXPECT_EQ(SharedStateAuditor::registered("UnitCensus"), 0u);
}

// The wiring test: the shared objects the fleet contract names must embed
// tokens.  If a refactor drops one, the race coverage silently vanishes —
// this pins it.
TEST(SharedStateAudit, CoreObjectsCarryTokens) {
  std::size_t interner0 = SharedStateAuditor::registered("Interner");
  std::size_t cache0 = SharedStateAuditor::registered("TransientCache");
  std::size_t book0 = SharedStateAuditor::registered("TraceBook");
  Interner interner;
  TransientCache cache;
  TraceBook book;
  EXPECT_EQ(SharedStateAuditor::registered("Interner"), interner0 + 1);
  EXPECT_EQ(SharedStateAuditor::registered("TransientCache"), cache0 + 1);
  EXPECT_EQ(SharedStateAuditor::registered("TraceBook"), book0 + 1);
}

TEST(SharedStateAudit, AuditedObjectsStayCleanWhenUsedCorrectly) {
  flush();
  AuditScope audit(AuditPolicy::kRecord);
  Interner interner;
  interner.intern("us-east-1a");
  interner.intern("us-east-1b");
  interner.intern("us-east-1a");  // hit path: no write scope needed
  TransientCache cache;
  cache.entry(0, 0, 10, 4);
  cache.invalidate();
  TraceBook book;
  book.audit_acquire();
  book.set(0, InstanceKind::kM1Small, SpotTrace{});
  book.audit_release();
  EXPECT_TRUE(SharedStateAuditor::drain().empty());
}

}  // namespace
}  // namespace jupiter
