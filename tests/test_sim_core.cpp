// Hardware-fast simulator core: contracts the calendar-queue engine must
// honour forever.
//
//   * SimCoreGolden — the 16-seed chaos corpus pinned to exact fingerprint
//     and metrics-CSV hashes captured from the binary-heap seed engine.  The
//     calendar queue, slab arena and inline callbacks may change *how*
//     events are stored, never *what* order they fire in: any drift here is
//     a determinism regression, not a tuning choice.
//   * SimCore — scheduling/cancel/run_until contracts with emphasis on the
//     places a bucketed engine could diverge from the old global heap:
//     same-timestamp FIFO across bucket boundaries and queue tiers, horizon
//     clamping, eager tombstone reclaim under cancel-heavy load.
//   * InlineFunction — the 48-byte inline callback: compile-time capacity
//     rejection, move-only captures, destroy-exactly-once across fired,
//     cancelled, and torn-down events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace jupiter {
namespace {

// ---- golden determinism corpus --------------------------------------------

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct Golden {
  std::uint64_t seed;
  std::uint64_t fingerprint;
  std::uint64_t metrics_csv_fnv;
};

// Captured from the seed (binary-heap, std::function) engine; the calendar
// queue must reproduce every byte.  Regenerate ONLY for an intentional
// behaviour change, never for an engine optimization:
//   for seed in 1..16: ChaosRunner(seed).run() -> {fingerprint(),
//   fnv1a64(metrics.to_csv())}
constexpr Golden kGoldens[] = {
    {1ULL, 0x2D3A7678FCF233B5ULL, 0xF09BBC511E166C52ULL},
    {2ULL, 0x753A3C09E7289622ULL, 0x94DF29A0216552DAULL},
    {3ULL, 0xB576B2CCFA4A5795ULL, 0xD65BD6BDD2A642F3ULL},
    {4ULL, 0x9340C7C78003DBC3ULL, 0xFAB21CC330DC2728ULL},
    {5ULL, 0x3E0034AE935C17CAULL, 0x7FE3A8FB705A7723ULL},
    {6ULL, 0xE0C916D680838EA4ULL, 0x8FC4CB91327B34A3ULL},
    {7ULL, 0x4E1C9EB529B51CEDULL, 0x81FD8B2E3B697314ULL},
    {8ULL, 0xA3E70920E3B18DA3ULL, 0x6191AC477282ACE3ULL},
    {9ULL, 0xAD0CA0B2B33AE974ULL, 0xAFB0D7DE8269837EULL},
    {10ULL, 0x7091380D83B2F745ULL, 0x384629F7D7EF6A9CULL},
    {11ULL, 0x727B8A4E820FBAAAULL, 0xE47F7E5162EED8EAULL},
    {12ULL, 0x48D90FE25F0E4AD4ULL, 0x732C5F8E2A8FE7F0ULL},
    {13ULL, 0x26A1C2986EF5E7BBULL, 0xA6B3DC9F2C2C039CULL},
    {14ULL, 0x4BF414A398EA3070ULL, 0xD309737093152417ULL},
    {15ULL, 0xB179A9E798F7B4F9ULL, 0x89C7C364F5DD61F9ULL},
    {16ULL, 0xF6F43039E24CCFD9ULL, 0xB9BB575D013E4292ULL},
};

TEST(SimCoreGolden, SixteenSeedCorpusByteIdentical) {
  for (const Golden& g : kGoldens) {
    chaos::ChaosReport report = chaos::ChaosRunner(g.seed).run();
    EXPECT_EQ(report.fingerprint(), g.fingerprint)
        << "seed " << g.seed << ": chaos fingerprint drifted";
    EXPECT_EQ(fnv1a64(report.metrics.to_csv()), g.metrics_csv_fnv)
        << "seed " << g.seed << ": metrics snapshot drifted";
  }
}

// ---- bounded memory under cancel-heavy load -------------------------------

TEST(SimCore, MillionFarFutureCancelsStayBounded) {
  // The seed engine kept every cancelled event in its heap until the
  // timestamp surfaced — a million cancelled week-out guards meant a million
  // resident tombstones.  The calendar queue reclaims eagerly: one arena
  // slot is recycled a million times.
  Simulator sim;
  const SimTime far(365LL * 24 * 3600);  // a year out: deep in the overflow tier
  for (int i = 0; i < 1'000'000; ++i) {
    EventHandle h = sim.schedule_at(far + i, [] {});
    ASSERT_TRUE(sim.cancel(h));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  Simulator::CoreStats st = sim.core_stats();
  EXPECT_EQ(st.cancelled, 1'000'000u);
  EXPECT_EQ(st.peak_pending, 1u);  // never more than one live at a time
  EXPECT_LE(st.arena_slots, 4u);   // eager reclaim: the slab never grows
  sim.run_until(far + 2'000'000);
  EXPECT_EQ(sim.dispatched_events(), 0u);
}

TEST(SimCore, InterleavedCancelKeepsArenaAtHighWater) {
  // Guard-churn shape: a window of live events slides forward; the arena
  // must plateau at the window's width, not the total churned count.
  Simulator sim;
  constexpr int kWindow = 256;
  std::vector<EventHandle> live;
  for (int i = 0; i < kWindow; ++i) {
    live.push_back(sim.schedule_at(SimTime(1'000'000 + i), [] {}));
  }
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(sim.cancel(live[static_cast<std::size_t>(i % kWindow)]));
    live[static_cast<std::size_t>(i % kWindow)] =
        sim.schedule_at(SimTime(1'000'000 + kWindow + i), [] {});
  }
  EXPECT_EQ(sim.pending_events(), static_cast<std::size_t>(kWindow));
  EXPECT_LE(sim.core_stats().arena_slots, static_cast<std::size_t>(kWindow) + 4);
}

// ---- run_until contracts ---------------------------------------------------

TEST(SimCore, RunUntilClampsClockWhenQueueDrainsEarly) {
  Simulator sim;
  sim.schedule_at(SimTime(10), [] {});
  sim.run_until(SimTime(1000));
  EXPECT_EQ(sim.now(), SimTime(1000));  // clamped forward past the last event
  Simulator empty;
  empty.run_until(SimTime(77));
  EXPECT_EQ(empty.now(), SimTime(77));  // even with nothing to run
}

TEST(SimCore, EventExactlyAtHorizonExecutes) {
  Simulator sim;
  bool at_horizon = false;
  bool past_horizon = false;
  sim.schedule_at(SimTime(100), [&] { at_horizon = true; });
  sim.schedule_at(SimTime(101), [&] { past_horizon = true; });
  sim.run_until(SimTime(100));
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(past_horizon);
  EXPECT_EQ(sim.now(), SimTime(100));
}

TEST(SimCore, RepeatedSameHorizonIsNoOp) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime(50), [&] { ++fired; });
  sim.run_until(SimTime(100));
  std::uint64_t dispatched = sim.dispatched_events();
  sim.run_until(SimTime(100));
  sim.run_until(SimTime(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.dispatched_events(), dispatched);
  EXPECT_EQ(sim.now(), SimTime(100));
}

TEST(SimCore, SameTimestampFifoAcrossBucketBoundaries) {
  // Default bucket width is 8 s: timestamps 7/8/9 straddle a cell boundary,
  // and several events share each timestamp.  Dispatch must be (at, seq) —
  // insertion order within a timestamp — regardless of which ring cell or
  // heap each event passed through.
  Simulator sim;
  std::vector<int> order;
  int tag = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::int64_t t : {9, 7, 8, 15, 16, 17}) {
      int id = tag++;
      sim.schedule_at(SimTime(t), [&order, id] { order.push_back(id); });
    }
  }
  sim.run_until(SimTime(20));
  // Reconstruct expected order: sort by (t, insertion index) — insertion
  // index is the tag itself, timestamps repeat across reps.
  const std::int64_t at[] = {9, 7, 8, 15, 16, 17};
  std::vector<std::pair<std::int64_t, int>> expect_pairs;
  for (int id = 0; id < tag; ++id) {
    expect_pairs.push_back({at[id % 6], id});
  }
  std::sort(expect_pairs.begin(), expect_pairs.end());
  std::vector<int> expect;
  for (const auto& [t, id] : expect_pairs) expect.push_back(id);
  EXPECT_EQ(order, expect);
}

TEST(SimCore, SameTimestampFifoAcrossQueueTiers) {
  // One event enters the far-future overflow tier, the wheel reseeds onto
  // its bucket, then two more arrive at the identical timestamp straight
  // into the ready heap.  FIFO by insertion order must survive the tier
  // migrations.
  Simulator sim;
  std::vector<int> order;
  const SimTime T(1'000'000);  // far outside the initial wheel window
  sim.schedule_at(T, [&] { order.push_back(0); });      // overflow tier
  sim.run_until(T - 3);                                 // reseed onto T's bucket
  sim.schedule_at(T, [&] { order.push_back(1); });      // ready/ring direct
  sim.schedule_at(T, [&] { order.push_back(2); });
  sim.run_until(T);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimCore, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  bool second_fired = false;
  EventHandle h1 = sim.schedule_at(SimTime(10), [] {});
  ASSERT_TRUE(sim.cancel(h1));
  EXPECT_FALSE(sim.cancel(h1));  // double cancel is a safe no-op
  // The arena recycles h1's slot for the next event; the stale handle must
  // not be able to kill it.
  EventHandle h2 = sim.schedule_at(SimTime(20), [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(h1));
  sim.run_until(SimTime(20));
  EXPECT_TRUE(second_fired);
  EXPECT_FALSE(sim.cancel(h2));  // fired => no longer cancellable
}

TEST(SimCore, CancelOfReadyHeapEventTombstones) {
  // Events in the currently-expanded bucket sit in the ready heap; cancel
  // must still win if it arrives before dispatch (callback cancelling a
  // sibling scheduled at a later instant of the same bucket).
  Simulator sim;
  bool victim_fired = false;
  EventHandle victim;
  sim.schedule_at(SimTime(1), [&] {
    // Canceller first in FIFO order, so it runs before the victim would.
    sim.schedule_at(SimTime(2), [&] { EXPECT_TRUE(sim.cancel(victim)); });
    victim = sim.schedule_at(SimTime(2), [&] { victim_fired = true; });
  });
  sim.run_until(SimTime(10));
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimCore, ReservePendingIsSemanticsNeutral) {
  Simulator a;
  Simulator b;
  b.reserve_pending(10'000);
  std::vector<int> order_a, order_b;
  for (int i = 0; i < 500; ++i) {
    a.schedule_at(SimTime(1 + (i * 7) % 97), [&order_a, i] { order_a.push_back(i); });
    b.schedule_at(SimTime(1 + (i * 7) % 97), [&order_b, i] { order_b.push_back(i); });
  }
  a.run_until(SimTime(100));
  b.run_until(SimTime(100));
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(b.core_stats().engine_allocs, 0u);  // reservation covered it all
}

// ---- InlineFunction --------------------------------------------------------

struct FitsExactly {
  unsigned char pad[InlineFunction<void()>::kCapacity];
  void operator()() const {}
};
struct OneByteTooBig {
  unsigned char pad[InlineFunction<void()>::kCapacity + 1];
  void operator()() const {}
};

// The capacity limit is a compile-time contract, testable in both
// directions through is_constructible (the constructor is constrained, not
// static_asserted, so oversize captures fail overload resolution cleanly).
static_assert(std::is_constructible_v<InlineFunction<void()>, FitsExactly>,
              "a capture of exactly kCapacity bytes must fit inline");
static_assert(!std::is_constructible_v<InlineFunction<void()>, OneByteTooBig>,
              "a capture one byte over kCapacity must be rejected");
static_assert(!std::is_constructible_v<InlineFunction<void()>, int>,
              "non-callables must never construct");
static_assert(
    !std::is_copy_constructible_v<InlineFunction<void()>> &&
        std::is_move_constructible_v<InlineFunction<void()>>,
    "InlineFunction is move-only");

TEST(InlineFunction, InvokesAndPassesArguments) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_TRUE(static_cast<bool>(add));
  EXPECT_EQ(add(20, 22), 42);
}

TEST(InlineFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(41);
  InlineFunction<int()> f = [p = std::move(p)] { return *p + 1; };
  InlineFunction<int()> g = std::move(f);  // relocates the unique_ptr
  EXPECT_FALSE(static_cast<bool>(f));      // moved-from is empty
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, MoveOnlyCaptureThroughSimulator) {
  Simulator sim;
  int seen = 0;
  auto p = std::make_unique<int>(7);
  sim.schedule_at(SimTime(1), [&seen, p = std::move(p)] { seen = *p; });
  sim.run_until(SimTime(1));
  EXPECT_EQ(seen, 7);
}

/// Counts live instances across every construct/move/destroy; leak or
/// double-destroy shows up as a nonzero balance.
struct LifeCounter {
  static int alive;
  static int destroyed;
  LifeCounter() { ++alive; }
  LifeCounter(const LifeCounter&) { ++alive; }
  LifeCounter(LifeCounter&&) noexcept { ++alive; }
  ~LifeCounter() {
    --alive;
    ++destroyed;
  }
  static void reset() {
    alive = 0;
    destroyed = 0;
  }
};
int LifeCounter::alive = 0;
int LifeCounter::destroyed = 0;

TEST(InlineFunction, DestroysCaptureExactlyOnceWhenFired) {
  LifeCounter::reset();
  {
    Simulator sim;
    sim.schedule_at(SimTime(1), [c = LifeCounter{}] { (void)c; });
    sim.run_until(SimTime(1));
    EXPECT_EQ(LifeCounter::alive, 0) << "capture must be destroyed after fire";
  }
  EXPECT_EQ(LifeCounter::alive, 0);
  EXPECT_GT(LifeCounter::destroyed, 0);
}

TEST(InlineFunction, DestroysCaptureExactlyOnceWhenCancelled) {
  LifeCounter::reset();
  {
    Simulator sim;
    // Wheel-resident cancel (eager reclaim) and ready-heap cancel
    // (tombstone) both release the capture exactly once.
    EventHandle wheel_ev =
        sim.schedule_at(SimTime(500), [c = LifeCounter{}] { (void)c; });
    ASSERT_TRUE(sim.cancel(wheel_ev));
    EXPECT_EQ(LifeCounter::alive, 0) << "eager cancel must destroy in place";

    EventHandle ready_ev;
    sim.schedule_at(SimTime(1), [&] {
      // Canceller first in FIFO order, so it runs before the victim would.
      sim.schedule_at(SimTime(2), [&] { ASSERT_TRUE(sim.cancel(ready_ev)); });
      ready_ev = sim.schedule_at(SimTime(2), [c = LifeCounter{}] { (void)c; });
    });
    sim.run_until(SimTime(10));
    EXPECT_EQ(LifeCounter::alive, 0) << "tombstoned cancel must destroy";
  }
  EXPECT_EQ(LifeCounter::alive, 0);
}

TEST(InlineFunction, DestroysCaptureExactlyOnceOnTeardown) {
  LifeCounter::reset();
  {
    Simulator sim;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at(SimTime(10'000 + i), [c = LifeCounter{}] { (void)c; });
    }
    EXPECT_GT(LifeCounter::alive, 0);
    // Simulator destroyed with events still pending: each capture must be
    // released exactly once by the arena teardown.
  }
  EXPECT_EQ(LifeCounter::alive, 0);
}

TEST(InlineFunction, BoxedEscapeHatchCountsItsAllocation) {
  struct Huge {
    unsigned char pad[256];
    int tag = 9;
  };
  static_assert(!InlineFunction<int()>::fits<Huge>,
                "test premise: Huge must exceed inline capacity");
  std::uint64_t before = inline_function_boxed_count();
  Huge h;
  InlineFunction<int()> f =
      InlineFunction<int()>::boxed([h] { return static_cast<int>(h.tag); });
  EXPECT_EQ(f(), 9);
  EXPECT_EQ(inline_function_boxed_count(), before + 1);
}

TEST(InlineFunction, ResetAndMoveSemantics) {
  int calls = 0;
  InlineFunction<void()> f = [&calls] { ++calls; };
  f();
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
  InlineFunction<void()> g;  // default-constructed is empty
  EXPECT_FALSE(static_cast<bool>(g));
  g = [&calls] { calls += 10; };
  InlineFunction<void()> h = std::move(g);
  EXPECT_FALSE(static_cast<bool>(g));
  h();
  EXPECT_EQ(calls, 11);
}

}  // namespace
}  // namespace jupiter
