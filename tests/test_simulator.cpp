#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hpp"

namespace jupiter {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime(20), [&] { order.push_back(2); });
  sim.run_until(SimTime(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime(100));
}

TEST(Simulator, FifoForSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime(10), [&order, i] { order.push_back(i); });
  }
  sim.run_until(SimTime(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_after(42, [&] { seen = sim.now(); });
  sim.run_until(SimTime(100));
  EXPECT_EQ(seen, SimTime(42));
}

TEST(Simulator, EventsBeyondHorizonStayPending) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTime(200), [&] { fired = true; });
  sim.run_until(SimTime(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(SimTime(200));
  EXPECT_TRUE(fired);  // boundary-inclusive
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.run_until(SimTime(50));
  EXPECT_THROW(sim.schedule_at(SimTime(10), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_until(SimTime(20));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  EventHandle h = sim.schedule_at(SimTime(10), [] {});
  sim.run_until(SimTime(20));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  EventHandle h = sim.schedule_at(SimTime(10), [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, InvalidHandleCancelIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<std::int64_t> at;
  sim.schedule_at(SimTime(10), [&] {
    at.push_back(sim.now().seconds());
    sim.schedule_after(5, [&] { at.push_back(sim.now().seconds()); });
  });
  sim.run_until(SimTime(100));
  EXPECT_EQ(at, (std::vector<std::int64_t>{10, 15}));
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime(1), [&] { ++count; });
  sim.schedule_at(SimTime(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, DispatchedCountExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(SimTime(1), [] {});
  EventHandle h = sim.schedule_at(SimTime(2), [] {});
  sim.cancel(h);
  sim.run_until(SimTime(10));
  EXPECT_EQ(sim.dispatched_events(), 1u);
}

TEST(Simulator, RunUntilClampsClockWhenQueueDrainsEarly) {
  Simulator sim;
  sim.schedule_at(SimTime(5), [] {});
  sim.run_until(SimTime(100));
  // The queue drained at t=5, but the clock still lands exactly on the
  // horizon — callers may rely on now() == until after run_until(until).
  EXPECT_EQ(sim.now(), SimTime(100));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilRepeatAndEmptyQueueAreNoops) {
  Simulator sim;
  sim.run_until(SimTime(30));
  EXPECT_EQ(sim.now(), SimTime(30));
  sim.run_until(SimTime(30));  // same horizon again
  EXPECT_EQ(sim.now(), SimTime(30));
  EXPECT_EQ(sim.dispatched_events(), 0u);
}

TEST(Simulator, ScheduleAtNowFiresThisInstantAfterPendingEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime(10), [&] {
    order.push_back(1);
    // at == now() is allowed; runs at t=10 after already-queued t=10 work.
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.schedule_at(SimTime(10), [&] { order.push_back(2); });
  sim.run_until(SimTime(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelAfterHandleFiredDoesNotTouchLaterEvents) {
  // Handles are never reused: cancelling a stale handle must not cancel a
  // newer event that happens to live in the queue.
  Simulator sim;
  bool late_fired = false;
  EventHandle h = sim.schedule_at(SimTime(1), [] {});
  sim.run_until(SimTime(2));
  sim.schedule_at(SimTime(5), [&] { late_fired = true; });
  EXPECT_FALSE(sim.cancel(h));
  sim.run_until(SimTime(10));
  EXPECT_TRUE(late_fired);
}

TEST(PeriodicTask, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<std::int64_t> fires;
  PeriodicTask task(sim, SimTime(10), 5,
                    [&](SimTime t) { fires.push_back(t.seconds()); });
  sim.run_until(SimTime(27));
  EXPECT_EQ(fires, (std::vector<std::int64_t>{10, 15, 20, 25}));
}

TEST(PeriodicTask, StopHaltsChain) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, SimTime(1), 1, [&](SimTime) {
    if (++count == 3) task.stop();
  });
  sim.run_until(SimTime(100));
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(task.stopped());
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, SimTime(1), 1, [&](SimTime) { ++count; });
    sim.run_until(SimTime(3));
  }
  sim.run_until(SimTime(100));
  EXPECT_EQ(count, 3);  // 1, 2, 3 fired before destruction
}

}  // namespace
}  // namespace jupiter
