#include "replay/sla.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

ReplayResult result_with(double availability, double cost) {
  ReplayResult r;
  r.elapsed = kWeek;
  r.downtime = static_cast<TimeDelta>((1.0 - availability) * kWeek);
  r.cost = Money::from_dollars(cost);
  return r;
}

TEST(Sla, NoCreditAtOrAboveFloor) {
  EXPECT_TRUE(sla_credit(result_with(1.0, 100)).is_zero());
  EXPECT_TRUE(sla_credit(result_with(0.995, 100)).is_zero());
  EXPECT_TRUE(sla_credit(result_with(0.99, 100)).is_zero());
}

TEST(Sla, ThirtyPercentCreditBelowFloor) {
  ReplayResult r = result_with(0.95, 100);
  EXPECT_EQ(sla_credit(r), Money::from_dollars(30));
  EXPECT_EQ(net_cost(r), Money::from_dollars(70));
}

TEST(Sla, CustomPolicy) {
  SlaPolicy strict;
  strict.availability_floor = 0.9999;
  strict.credit_fraction = 0.5;
  ReplayResult r = result_with(0.999, 10);
  EXPECT_EQ(sla_credit(r, strict), Money::from_dollars(5));
  EXPECT_EQ(net_cost(r, strict), Money::from_dollars(5));
}

TEST(Sla, NetCostEqualsCostWhenCompliant) {
  ReplayResult r = result_with(0.999, 42);
  EXPECT_EQ(net_cost(r), r.cost);
}

}  // namespace
}  // namespace jupiter
