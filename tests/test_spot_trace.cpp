#include "market/spot_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jupiter {
namespace {

SpotTrace make_trace() {
  // price 10 from t=0, 20 from t=100, 15 from t=250, 30 from t=400
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(10));
  tr.append(SimTime(100), PriceTick(20));
  tr.append(SimTime(250), PriceTick(15));
  tr.append(SimTime(400), PriceTick(30));
  return tr;
}

TEST(SpotTrace, AppendMergesDuplicatePrices) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(10));
  tr.append(SimTime(50), PriceTick(10));  // same price: ignored
  tr.append(SimTime(80), PriceTick(12));
  EXPECT_EQ(tr.size(), 2u);
}

TEST(SpotTrace, AppendRequiresAdvancingTime) {
  SpotTrace tr;
  tr.append(SimTime(10), PriceTick(1));
  EXPECT_THROW(tr.append(SimTime(10), PriceTick(2)), std::invalid_argument);
  EXPECT_THROW(tr.append(SimTime(5), PriceTick(2)), std::invalid_argument);
}

TEST(SpotTrace, ConstructorNormalizes) {
  SpotTrace tr({{SimTime(0), PriceTick(5)},
                {SimTime(10), PriceTick(5)},
                {SimTime(20), PriceTick(7)}});
  EXPECT_EQ(tr.size(), 2u);
}

TEST(SpotTrace, PriceAtSelectsSegment) {
  SpotTrace tr = make_trace();
  EXPECT_EQ(tr.price_at(SimTime(0)).value(), 10);
  EXPECT_EQ(tr.price_at(SimTime(99)).value(), 10);
  EXPECT_EQ(tr.price_at(SimTime(100)).value(), 20);
  EXPECT_EQ(tr.price_at(SimTime(399)).value(), 15);
  EXPECT_EQ(tr.price_at(SimTime(10000)).value(), 30);
}

TEST(SpotTrace, PriceBeforeStartThrows) {
  SpotTrace tr = make_trace();
  EXPECT_THROW(tr.price_at(SimTime(-1)), std::out_of_range);
}

TEST(SpotTrace, SliceReanchorsFirstPoint) {
  SpotTrace tr = make_trace();
  SpotTrace s = tr.slice(SimTime(150), SimTime(420));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.points()[0], (PricePoint{SimTime(150), PriceTick(20)}));
  EXPECT_EQ(s.points()[1], (PricePoint{SimTime(250), PriceTick(15)}));
  EXPECT_EQ(s.points()[2], (PricePoint{SimTime(400), PriceTick(30)}));
}

TEST(SpotTrace, SliceEmptyInterval) {
  SpotTrace tr = make_trace();
  EXPECT_TRUE(tr.slice(SimTime(100), SimTime(100)).empty());
}

TEST(SpotTrace, MaxPriceOverWindow) {
  SpotTrace tr = make_trace();
  EXPECT_EQ(tr.max_price(SimTime(0), SimTime(100)).value(), 10);
  EXPECT_EQ(tr.max_price(SimTime(0), SimTime(101)).value(), 20);
  EXPECT_EQ(tr.max_price(SimTime(150), SimTime(300)).value(), 20);
  EXPECT_EQ(tr.max_price(SimTime(300), SimTime(500)).value(), 30);
}

TEST(SpotTrace, LastPriceInWindow) {
  SpotTrace tr = make_trace();
  // The charge for an hour is the last price in force before its end.
  EXPECT_EQ(tr.last_price_in(SimTime(0), SimTime(100)).value(), 10);
  EXPECT_EQ(tr.last_price_in(SimTime(0), SimTime(101)).value(), 20);
  EXPECT_EQ(tr.last_price_in(SimTime(200), SimTime(300)).value(), 15);
}

TEST(SpotTrace, FirstExceedFindsCrossing) {
  SpotTrace tr = make_trace();
  EXPECT_EQ(tr.first_exceed(SimTime(0), PriceTick(10)), SimTime(100));
  EXPECT_EQ(tr.first_exceed(SimTime(0), PriceTick(25)), SimTime(400));
  EXPECT_EQ(tr.first_exceed(SimTime(0), PriceTick(30)), std::nullopt);
  // Already above the bid: exceeds immediately.
  EXPECT_EQ(tr.first_exceed(SimTime(120), PriceTick(15)), SimTime(120));
  // After a drop the next crossing counts.
  EXPECT_EQ(tr.first_exceed(SimTime(260), PriceTick(20)), SimTime(400));
}

TEST(SpotTrace, CsvRoundTrip) {
  SpotTrace tr = make_trace();
  std::ostringstream os;
  tr.save_csv(os);
  std::istringstream is(os.str());
  SpotTrace loaded = SpotTrace::load_csv(is);
  EXPECT_EQ(loaded.points(), tr.points());
}

TEST(SpotTrace, LoadRejectsMalformedRows) {
  std::istringstream is("seconds,price_ticks\n1,2,3\n");
  EXPECT_THROW(SpotTrace::load_csv(is), std::runtime_error);
}

TEST(SpotTrace, OverlayForcesPriceOverWindowOnly) {
  SpotTrace tr = make_trace();
  SpotTrace shocked = tr.overlay(SimTime(150), SimTime(300), PriceTick(999));
  // Before the window: untouched.
  EXPECT_EQ(shocked.price_at(SimTime(0)), PriceTick(10));
  EXPECT_EQ(shocked.price_at(SimTime(149)), PriceTick(20));
  // Inside: the shock price, swallowing the t=250 change.
  EXPECT_EQ(shocked.price_at(SimTime(150)), PriceTick(999));
  EXPECT_EQ(shocked.price_at(SimTime(299)), PriceTick(999));
  // At `to` the original price resumes, and later changes survive.
  EXPECT_EQ(shocked.price_at(SimTime(300)), PriceTick(15));
  EXPECT_EQ(shocked.price_at(SimTime(400)), PriceTick(30));
  // The source trace is untouched.
  EXPECT_EQ(tr.price_at(SimTime(200)), PriceTick(20));
}

TEST(SpotTrace, OverlayAlignedWithExistingChangePoint) {
  SpotTrace tr = make_trace();
  SpotTrace shocked = tr.overlay(SimTime(100), SimTime(400), PriceTick(500));
  EXPECT_EQ(shocked.price_at(SimTime(100)), PriceTick(500));
  EXPECT_EQ(shocked.price_at(SimTime(399)), PriceTick(500));
  EXPECT_EQ(shocked.price_at(SimTime(400)), PriceTick(30));
}

TEST(SpotTrace, OverlayMatchingCurrentPriceCollapses) {
  SpotTrace tr = make_trace();
  // Shock price equals the price already in force: the trace is unchanged
  // semantically (append() elides no-op change points).
  SpotTrace same = tr.overlay(SimTime(100), SimTime(250), PriceTick(20));
  for (std::int64_t t : {0, 100, 249, 250, 400}) {
    EXPECT_EQ(same.price_at(SimTime(t)), tr.price_at(SimTime(t)));
  }
}

TEST(SpotTrace, OverlayRejectsBadWindows) {
  SpotTrace tr = make_trace();
  EXPECT_THROW(tr.overlay(SimTime(200), SimTime(200), PriceTick(1)),
               std::invalid_argument);
  EXPECT_THROW(tr.overlay(SimTime(300), SimTime(200), PriceTick(1)),
               std::invalid_argument);
  EXPECT_THROW(SpotTrace{}.overlay(SimTime(0), SimTime(10), PriceTick(1)),
               std::logic_error);
}

}  // namespace
}  // namespace jupiter
