#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace jupiter {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 0.5), 15.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({}, 0.0), std::invalid_argument);
  EXPECT_THROW(percentile({}, 1.0), std::invalid_argument);
}

TEST(Percentile, SingleSampleIsEveryQuantile) {
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile({42.0}, q), 42.0) << "q=" << q;
  }
}

TEST(Percentile, ClampsOutOfRangeQuantiles) {
  std::vector<double> xs = {3, 1, 2};  // also: input need not be sorted
  EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 1.0);  // q<=0 -> min
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 3.0);   // q>=1 -> max
  EXPECT_DOUBLE_EQ(percentile(xs, 1.5), 3.0);
}

TEST(RunningStats, MergeEmptyIntoEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeSingleSamples) {
  RunningStats a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_NEAR(a.variance(), 2.0, 1e-12);  // sample variance of {1,3}
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
}

TEST(Binomial, SmallValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial(5, -1), 0.0);
  EXPECT_DOUBLE_EQ(binomial(10, 5), 252.0);
}

TEST(BinomialCdf, Boundaries) {
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 5, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, -1, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 0, 0.0), 1.0);
}

// The paper's §3 example: 5 nodes, FP 0.01, tolerating two failures.
TEST(BinomialCdf, PaperExample) {
  EXPECT_NEAR(binomial_cdf(5, 2, 0.01), 0.9999901494, 1e-10);
}

TEST(Bisect, FindsRootOfIncreasing) {
  double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0, true);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, FindsRootOfDecreasing) {
  double r = bisect([](double x) { return 1.0 - x; }, 0.0, 3.0, false);
  EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(Bisect, RootAtLowerEdge) {
  double r = bisect([](double x) { return x + 1.0; }, 0.0, 1.0, true);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

struct CdfCase {
  int n;
  int k;
  double p;
};

class BinomialCdfSweep : public ::testing::TestWithParam<CdfCase> {};

// Property: CDF equals the brute-force sum of pmf terms and is monotone in k.
TEST_P(BinomialCdfSweep, MatchesBruteForceAndMonotone) {
  auto [n, k, p] = GetParam();
  double direct = 0;
  for (int i = 0; i <= k && i <= n; ++i) {
    direct += binomial(n, i) * std::pow(p, i) * std::pow(1 - p, n - i);
  }
  EXPECT_NEAR(binomial_cdf(n, k, p), std::min(direct, 1.0), 1e-12);
  if (k > 0) {
    EXPECT_GE(binomial_cdf(n, k, p), binomial_cdf(n, k - 1, p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialCdfSweep,
    ::testing::Values(CdfCase{1, 0, 0.01}, CdfCase{3, 1, 0.1},
                      CdfCase{5, 2, 0.01}, CdfCase{5, 2, 0.5},
                      CdfCase{7, 3, 0.023}, CdfCase{9, 4, 0.3},
                      CdfCase{15, 7, 0.9}, CdfCase{25, 12, 0.04}));

}  // namespace
}  // namespace jupiter
