#include "core/strategies.hpp"

#include <gtest/gtest.h>

#include "cloud/region.hpp"

namespace jupiter {
namespace {

MarketSnapshot snapshot_of(std::vector<std::pair<int, int>> zone_prices,
                           InstanceKind kind = InstanceKind::kM1Small) {
  MarketSnapshot snap;
  for (auto [zone, price] : zone_prices) {
    MarketZoneState st;
    st.zone = zone;
    st.price = PriceTick(price);
    st.age_minutes = 0;
    st.on_demand = PriceTick::from_money(on_demand_price_zone(zone, kind));
    snap.push_back(st);
  }
  return snap;
}

TEST(ExtraStrategy, NameFormat) {
  EXPECT_EQ(ExtraStrategy(ServiceSpec::lock_service(), 0, 0.1).name(),
            "Extra(0,0.1)");
  EXPECT_EQ(ExtraStrategy(ServiceSpec::lock_service(), 2, 0.2).name(),
            "Extra(2,0.2)");
}

TEST(ExtraStrategy, PicksLowestPricedZones) {
  ExtraStrategy strat(ServiceSpec::lock_service(), 0, 0.2);
  MarketSnapshot snap = snapshot_of(
      {{0, 90}, {1, 50}, {2, 70}, {3, 60}, {4, 80}, {5, 40}, {6, 100}});
  StrategyDecision d = strat.decide(snap, SimTime(0), {});
  ASSERT_EQ(d.spot_bids.size(), 5u);
  std::vector<int> zones;
  for (const auto& b : d.spot_bids) zones.push_back(b.zone);
  std::sort(zones.begin(), zones.end());
  EXPECT_EQ(zones, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ExtraStrategy, BidIsPricePlusPortionRoundedUp) {
  ExtraStrategy strat(ServiceSpec::lock_service(), 0, 0.2);
  MarketSnapshot snap =
      snapshot_of({{0, 50}, {1, 55}, {2, 60}, {3, 65}, {4, 71}});
  StrategyDecision d = strat.decide(snap, SimTime(0), {});
  for (const auto& b : d.spot_bids) {
    int price = 0;
    for (const auto& st : snap) {
      if (st.zone == b.zone) price = st.price.value();
    }
    EXPECT_EQ(b.bid.value(),
              static_cast<int>(std::ceil(price * 1.2)));
  }
}

TEST(ExtraStrategy, AdditionalNodesIncreaseCount) {
  ExtraStrategy strat(ServiceSpec::lock_service(), 2, 0.2);
  MarketSnapshot snap = snapshot_of({{0, 10},
                                     {1, 11},
                                     {2, 12},
                                     {3, 13},
                                     {4, 14},
                                     {5, 15},
                                     {6, 16},
                                     {7, 17}});
  StrategyDecision d = strat.decide(snap, SimTime(0), {});
  EXPECT_EQ(d.spot_bids.size(), 7u);  // 5 + 2
}

TEST(ExtraStrategy, FewerZonesThanWanted) {
  ExtraStrategy strat(ServiceSpec::lock_service(), 2, 0.2);
  MarketSnapshot snap = snapshot_of({{0, 10}, {1, 11}});
  StrategyDecision d = strat.decide(snap, SimTime(0), {});
  EXPECT_EQ(d.spot_bids.size(), 2u);
}

TEST(OnDemandStrategy, PicksCheapestOnDemandZones) {
  OnDemandStrategy strat(ServiceSpec::lock_service());
  // Spread across regions: us-east-1a (0), sa-east-1a (22), ap-northeast-1a
  // (index?), etc.  Use zones 0..7 (us-east-1a..eu-west-1a).
  MarketSnapshot snap = snapshot_of(
      {{0, 10}, {1, 10}, {4, 10}, {7, 10}, {10, 10}, {13, 10}, {22, 10}});
  StrategyDecision d = strat.decide(snap, SimTime(0), {});
  ASSERT_EQ(d.on_demand_zones.size(), 5u);
  EXPECT_TRUE(d.spot_bids.empty());
  // The cheapest m1.small regions are us-east-1/us-west-2 at $0.044.
  Money max_price;
  for (int z : d.on_demand_zones) {
    max_price = std::max(max_price,
                         on_demand_price_zone(z, InstanceKind::kM1Small));
  }
  EXPECT_LE(max_price, Money::from_dollars(0.047));
}

struct JupiterFixture : ::testing::Test {
  JupiterFixture() {
    zones = {0, 1, 4, 5, 7, 8, 10};
    book = TraceBook::synthetic(zones, InstanceKind::kM1Small, SimTime(0),
                                SimTime(5 * kWeek), 11);
    spec = ServiceSpec::lock_service();
  }
  std::vector<int> zones;
  TraceBook book;
  ServiceSpec spec;
};

TEST_F(JupiterFixture, ProducesValidDeployment) {
  JupiterStrategy strat(book, spec, SimTime(0), {.horizon_minutes = 60});
  MarketSnapshot snap =
      snapshot_at(book, spec.kind, zones, SimTime(4 * kWeek));
  StrategyDecision d = strat.decide(snap, SimTime(4 * kWeek), {});
  EXPECT_GE(d.total_nodes(), spec.min_nodes());
  EXPECT_TRUE(d.on_demand_zones.empty());
  for (const auto& b : d.spot_bids) {
    bool in_snapshot = false;
    for (const auto& st : snap) {
      if (st.zone == b.zone) {
        in_snapshot = true;
        EXPECT_GE(b.bid, st.price);
        EXPECT_LT(b.bid, st.on_demand);
      }
    }
    EXPECT_TRUE(in_snapshot);
  }
}

TEST_F(JupiterFixture, StaysWithHealthyHoldings) {
  JupiterStrategy strat(book, spec, SimTime(0), {.horizon_minutes = 60});
  MarketSnapshot snap =
      snapshot_at(book, spec.kind, zones, SimTime(4 * kWeek));
  StrategyDecision first = strat.decide(snap, SimTime(4 * kWeek), {});
  ASSERT_GE(first.total_nodes(), spec.min_nodes());
  // Feed the same holdings back under identical market conditions: the
  // holdings satisfy the constraint by construction, so the strategy must
  // keep them verbatim (no churn without cause).
  StrategyDecision second =
      strat.decide(snap, SimTime(4 * kWeek), first.spot_bids);
  EXPECT_EQ(second.spot_bids, first.spot_bids);
}

TEST_F(JupiterFixture, KeepsHigherHeldBidInSameZone) {
  JupiterStrategy strat(book, spec, SimTime(0), {.horizon_minutes = 60});
  MarketSnapshot snap =
      snapshot_at(book, spec.kind, zones, SimTime(4 * kWeek));
  StrategyDecision fresh = strat.decide(snap, SimTime(4 * kWeek), {});
  ASSERT_FALSE(fresh.spot_bids.empty());
  // Inflate every held bid by one tick; decisions must keep the held bids
  // rather than re-bid lower (replacement costs money, higher bids do not).
  std::vector<ZoneBid> held;
  for (const auto& b : fresh.spot_bids) {
    held.push_back(ZoneBid{b.zone, b.bid + 1});
  }
  JupiterStrategy strat2(book, spec, SimTime(0), {.horizon_minutes = 60});
  StrategyDecision d = strat2.decide(snap, SimTime(4 * kWeek), held);
  for (const auto& b : d.spot_bids) {
    for (const auto& h : held) {
      if (h.zone == b.zone) {
        EXPECT_GE(b.bid, h.bid);
      }
    }
  }
}

}  // namespace
}  // namespace jupiter
