#include "replay/sweep.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

TEST(Sweep, ProducesCellForEveryJob) {
  Scenario sc = make_scenario(InstanceKind::kM1Small, 1, 1, 321);
  ServiceSpec spec = ServiceSpec::lock_service();
  SweepOptions opts;
  opts.intervals = {6 * kHour, 12 * kHour};
  opts.extras = {{0, 0.2}};
  auto cells = run_sweep(sc, spec, opts);
  ASSERT_EQ(cells.size(), 4u);  // (Jupiter + 1 extra) x 2 intervals
  // Strategy-major, interval ascending.
  EXPECT_EQ(cells[0].strategy, "Jupiter");
  EXPECT_EQ(cells[0].interval, 6 * kHour);
  EXPECT_EQ(cells[1].strategy, "Jupiter");
  EXPECT_EQ(cells[1].interval, 12 * kHour);
  EXPECT_EQ(cells[2].strategy, "Extra(0,0.2)");
  for (const auto& c : cells) {
    EXPECT_GT(c.result.decisions, 0);
    EXPECT_GT(c.result.cost.micros(), 0);
  }
}

TEST(Sweep, JupiterCanBeExcluded) {
  Scenario sc = make_scenario(InstanceKind::kM1Small, 1, 1, 321);
  SweepOptions opts;
  opts.intervals = {12 * kHour};
  opts.include_jupiter = false;
  opts.extras = {{0, 0.1}, {2, 0.2}};
  auto cells = run_sweep(sc, ServiceSpec::lock_service(), opts);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].strategy, "Extra(0,0.1)");
  EXPECT_EQ(cells[1].strategy, "Extra(2,0.2)");
}

TEST(Sweep, DeterministicAcrossRuns) {
  Scenario sc = make_scenario(InstanceKind::kM1Small, 1, 1, 555);
  SweepOptions opts;
  opts.intervals = {12 * kHour};
  opts.extras = {};
  auto a = run_sweep(sc, ServiceSpec::lock_service(), opts);
  auto b = run_sweep(sc, ServiceSpec::lock_service(), opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.cost, b[i].result.cost);
    EXPECT_EQ(a[i].result.downtime, b[i].result.downtime);
  }
}

TEST(Sweep, BestJupiterCellFindsCheapest) {
  ReplayResult cheap, pricey;
  cheap.cost = Money::from_dollars(10);
  pricey.cost = Money::from_dollars(20);
  std::vector<SweepCell> cells = {
      SweepCell{"Extra(0,0.2)", kHour, cheap},  // not Jupiter: ignored
      SweepCell{"Jupiter", kHour, pricey},
      SweepCell{"Jupiter", 6 * kHour, cheap},
  };
  const SweepCell* best = best_jupiter_cell(cells);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->interval, 6 * kHour);
  EXPECT_EQ(best_jupiter_cell({}), nullptr);
}

}  // namespace
}  // namespace jupiter
