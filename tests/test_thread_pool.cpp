#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace jupiter {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    ++count;
    pool.submit([&] { ++count; });
  });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  // par: owned — atomic per-index slots
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ResultsAreDeterministic) {
  ThreadPool pool(4);
  std::vector<double> out(100);
  // par: owned — each index writes its own slot
  parallel_for(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelFor, NestedCallsFromPoolTasksComplete) {
  // The online bidder primes bid curves with a parallel_for while replay
  // jobs themselves run under parallel_for on the same pool; batch-scoped
  // completion tracking must keep the inner call from waiting on its own
  // caller.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(8 * 16);
  // par: owned — atomic per-index slots (covers the nested call too)
  parallel_for(pool, 8, [&](std::size_t outer) {
    parallel_for(pool, 16, [&](std::size_t inner) {
      ++hits[outer * 16 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GlobalPool, IsSingleton) {
  ThreadPool* a = &global_pool();
  ThreadPool* b = &global_pool();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->size(), 1u);
}

}  // namespace
}  // namespace jupiter
