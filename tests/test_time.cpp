#include "util/time.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

TEST(SimTime, Constants) {
  EXPECT_EQ(kMinute, 60);
  EXPECT_EQ(kHour, 3600);
  EXPECT_EQ(kDay, 86400);
  EXPECT_EQ(kWeek, 604800);
}

TEST(SimTime, UnitAccessors) {
  SimTime t(2 * kHour + 30 * kMinute + 5);
  EXPECT_EQ(t.seconds(), 9005);
  EXPECT_EQ(t.minutes(), 150);
  EXPECT_EQ(t.hours(), 2);
}

TEST(SimTime, HourBoundaries) {
  SimTime t(kHour + 1);
  EXPECT_EQ(t.floor_hour().seconds(), kHour);
  EXPECT_EQ(t.next_hour().seconds(), 2 * kHour);
  EXPECT_FALSE(t.on_hour_boundary());
  EXPECT_TRUE(SimTime(3 * kHour).on_hour_boundary());
  // next_hour of an exact boundary is the following hour.
  EXPECT_EQ(SimTime(kHour).next_hour().seconds(), 2 * kHour);
}

TEST(SimTime, FloorMinute) {
  EXPECT_EQ(SimTime(119).floor_minute().seconds(), 60);
  EXPECT_EQ(SimTime(120).floor_minute().seconds(), 120);
}

TEST(SimTime, Arithmetic) {
  SimTime t(100);
  EXPECT_EQ((t + 50).seconds(), 150);
  EXPECT_EQ((t - 30).seconds(), 70);
  EXPECT_EQ(SimTime(150) - SimTime(100), 50);
  t += 10;
  EXPECT_EQ(t.seconds(), 110);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime(1), SimTime(2));
  EXPECT_EQ(SimTime(5), SimTime(5));
  EXPECT_LT(SimTime(1), SimTime::infinity());
}

TEST(SimTime, ArithmeticSaturatesAtInfinity) {
  // infinity() is INT64_MAX; arithmetic near the sentinel saturates rather
  // than overflowing (UB, and an abort under -fsanitize=undefined).
  SimTime inf = SimTime::infinity();
  EXPECT_EQ(inf + kHour, inf);
  EXPECT_EQ(inf + 1, inf);
  SimTime t = inf;
  t += kWeek;
  EXPECT_EQ(t, inf);
  EXPECT_EQ(inf.next_hour(), inf);
  // Deltas against the sentinel clamp to the extremes.
  EXPECT_EQ(inf - SimTime(-1), INT64_MAX);
  EXPECT_EQ(SimTime(-2) - inf, INT64_MIN);
  // Ordinary arithmetic is unchanged.
  EXPECT_EQ((SimTime(100) + 50).seconds(), 150);
  EXPECT_EQ(SimTime(100) - SimTime(40), 60);
}

TEST(SimTime, Rendering) {
  EXPECT_EQ(SimTime(0).str(), "d0 00:00:00");
  EXPECT_EQ(SimTime(kDay + kHour + kMinute + 1).str(), "d1 01:01:01");
  EXPECT_EQ(SimTime::infinity().str(), "t=inf");
}

}  // namespace
}  // namespace jupiter
