#include <gtest/gtest.h>

#include <sstream>

#include "replay/replay_engine.hpp"
#include "replay/report.hpp"
#include "util/csv.hpp"

namespace jupiter {
namespace {

class OneBidStrategy : public BiddingStrategy {
 public:
  std::string name() const override { return "one"; }
  StrategyDecision decide(const MarketSnapshot&, SimTime,
                          const std::vector<ZoneBid>&) override {
    StrategyDecision d;
    d.spot_bids = {{0, PriceTick(150)}};
    return d;
  }
};

TEST(Timeline, RecordsAggregateToTotals) {
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(100));
  tr.append(SimTime(90 * kMinute), PriceTick(300));
  tr.append(SimTime(100 * kMinute), PriceTick(100));
  TraceBook book;
  book.set(0, InstanceKind::kM1Small, std::move(tr));

  OneBidStrategy strat;
  ReplayConfig cfg;
  cfg.spec = ServiceSpec::lock_service();
  cfg.spec.baseline_nodes = 1;
  cfg.interval = kHour;
  cfg.replay_start = SimTime(0);
  cfg.replay_end = SimTime(4 * kHour);
  cfg.zones = {0};
  ReplayResult r = replay_strategy(book, strat, cfg);

  ASSERT_EQ(r.timeline.size(), static_cast<std::size_t>(r.decisions));
  TimeDelta down = 0, len = 0;
  int launches = 0, oob = 0;
  for (const auto& rec : r.timeline) {
    down += rec.downtime;
    len += rec.length;
    launches += rec.launches;
    oob += rec.out_of_bid;
    EXPECT_EQ(rec.nodes, 1);
  }
  EXPECT_EQ(down, r.downtime);
  EXPECT_EQ(len, r.elapsed);
  EXPECT_EQ(launches, r.instances_launched);
  EXPECT_EQ(oob, r.out_of_bid_events);
  // The out-of-bid interval is interval 1 ([1h, 2h) contains t=90 min).
  EXPECT_EQ(r.timeline[1].out_of_bid, 1);
  EXPECT_GT(r.timeline[1].downtime, 0);
  EXPECT_EQ(r.timeline[0].downtime, 0);
}

TEST(Timeline, CsvEmission) {
  ReplayResult r;
  r.timeline.push_back(IntervalRecord{SimTime(0), kHour, 5, 5, 0, 0});
  r.timeline.push_back(IntervalRecord{SimTime(kHour), kHour, 5, 1, 2, 120});
  std::ostringstream os;
  timeline_to_csv(os, r);
  std::istringstream is(os.str());
  auto rows = read_csv(is);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "start_seconds");
  EXPECT_EQ(rows[2][0], "3600");
  EXPECT_EQ(rows[2][4], "2");
  EXPECT_EQ(rows[2][5], "120");
}

}  // namespace
}  // namespace jupiter
