#include "cloud/trace_book.hpp"

#include <gtest/gtest.h>

#include "cloud/region.hpp"

namespace jupiter {
namespace {

TEST(TraceBook, SetHasTrace) {
  TraceBook book;
  EXPECT_FALSE(book.has(0, InstanceKind::kM1Small));
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(50));
  book.set(0, InstanceKind::kM1Small, tr);
  EXPECT_TRUE(book.has(0, InstanceKind::kM1Small));
  EXPECT_FALSE(book.has(0, InstanceKind::kM3Large));
  EXPECT_FALSE(book.has(1, InstanceKind::kM1Small));
  EXPECT_EQ(book.trace(0, InstanceKind::kM1Small).points()[0].price.value(),
            50);
  EXPECT_THROW(book.trace(1, InstanceKind::kM1Small), std::out_of_range);
}

TEST(TraceBook, ZonesForKind) {
  TraceBook book;
  SpotTrace tr;
  tr.append(SimTime(0), PriceTick(50));
  book.set(3, InstanceKind::kM1Small, tr);
  book.set(1, InstanceKind::kM1Small, tr);
  book.set(2, InstanceKind::kM3Large, tr);
  EXPECT_EQ(book.zones_for(InstanceKind::kM1Small), (std::vector<int>{1, 3}));
  EXPECT_EQ(book.zones_for(InstanceKind::kM3Large), (std::vector<int>{2}));
}

TEST(TraceBook, SyntheticIsDeterministic) {
  std::vector<int> zones = {0, 1, 5};
  TraceBook a = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                     SimTime(0), SimTime(kWeek), 99);
  TraceBook b = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                     SimTime(0), SimTime(kWeek), 99);
  for (int z : zones) {
    EXPECT_EQ(a.trace(z, InstanceKind::kM1Small).points(),
              b.trace(z, InstanceKind::kM1Small).points());
  }
  TraceBook c = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                     SimTime(0), SimTime(kWeek), 100);
  EXPECT_NE(a.trace(0, InstanceKind::kM1Small).points(),
            c.trace(0, InstanceKind::kM1Small).points());
}

TEST(TraceBook, SyntheticZonesDiffer) {
  std::vector<int> zones = {0, 1};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(kWeek), 1);
  EXPECT_NE(book.trace(0, InstanceKind::kM1Small).points(),
            book.trace(1, InstanceKind::kM1Small).points());
}

TEST(TraceBook, SyntheticKindsDiffer) {
  std::vector<int> zones = {0};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(kWeek), 1);
  book.merge(TraceBook::synthetic(zones, InstanceKind::kM3Large, SimTime(0),
                                  SimTime(kWeek), 1));
  EXPECT_NE(book.trace(0, InstanceKind::kM1Small).points(),
            book.trace(0, InstanceKind::kM3Large).points());
}

TEST(TraceBook, SyntheticStoresProfiles) {
  std::vector<int> zones = {2};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(kWeek), 1);
  auto zp = book.profile(2, InstanceKind::kM1Small);
  ASSERT_TRUE(zp.has_value());
  EXPECT_EQ(zp->on_demand.money(),
            on_demand_price_zone(2, InstanceKind::kM1Small));
  EXPECT_FALSE(book.profile(3, InstanceKind::kM1Small).has_value());
}

TEST(TraceBook, SyntheticCoversRequestedWindow) {
  std::vector<int> zones = {0};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(2 * kWeek), 1);
  const SpotTrace& tr = book.trace(0, InstanceKind::kM1Small);
  EXPECT_EQ(tr.start(), SimTime(0));
  EXPECT_LT(tr.last_change(), SimTime(2 * kWeek));
  // price_at anywhere inside the window works.
  EXPECT_NO_THROW(tr.price_at(SimTime(2 * kWeek - 1)));
}

TEST(TraceBook, MergeOverwrites) {
  TraceBook a, b;
  SpotTrace t1, t2;
  t1.append(SimTime(0), PriceTick(1));
  t2.append(SimTime(0), PriceTick(2));
  a.set(0, InstanceKind::kM1Small, t1);
  b.set(0, InstanceKind::kM1Small, t2);
  b.set(1, InstanceKind::kM1Small, t1);
  a.merge(std::move(b));
  EXPECT_EQ(a.trace(0, InstanceKind::kM1Small).points()[0].price.value(), 2);
  EXPECT_TRUE(a.has(1, InstanceKind::kM1Small));
}

}  // namespace
}  // namespace jupiter
