// Causal trace flows (ISSUE 9 tentpole c): one client op threads a TraceId
// through SimNetwork message headers so the Chrome/Perfetto export renders a
// connected s/t/f arrow chain across per-replica tracks.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "lock/lock_service.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace jupiter {
namespace {

// Concrete harness (not a gtest fixture) so tests can spin up a second,
// independent copy to compare byte streams across runs.
struct FlowHarness {
  FlowHarness()
      : net(sim, 17),
        group(sim, net, paxos::Replica::Options{},
              [](paxos::NodeId) {
                return std::make_unique<lock::LockServiceState>();
              },
              888) {
    ctx.trace = &trace;
    ctx.metrics = &reg;
  }

  void bootstrap_and_acquire() {
    obs::ContextScope scope(&ctx);
    group.bootstrap(5);
    sim.run_until(sim.now() + 200);
    lock::LockClient alice(group, sim, "alice", 7200);
    alice.open_session();
    sim.run_until(sim.now() + 120);
    lock::LockStatus st = lock::LockStatus::kExpired;
    alice.acquire("/flow/leader", [&](lock::LockResponse r) { st = r.status; });
    sim.run_until(sim.now() + 120);
    ASSERT_EQ(st, lock::LockStatus::kOk);
  }

  Simulator sim;
  paxos::SimNetwork net;
  paxos::Group group;
  obs::Registry reg;
  obs::MemoryTraceSink trace;
  obs::ObsContext ctx;
};

struct TraceFlow : ::testing::Test {
  FlowHarness h;
  Simulator& sim = h.sim;
  paxos::Group& group = h.group;
  obs::Registry& reg = h.reg;
  obs::MemoryTraceSink& trace = h.trace;
  void bootstrap_and_acquire() { h.bootstrap_and_acquire(); }
};

TEST_F(TraceFlow, AcquireEmitsConnectedFlowAcrossReplicas) {
  bootstrap_and_acquire();

  // Group flow events by id and check at least one flow starts, hops, and
  // ends — and that its hops touch >= 3 distinct replica tracks.
  std::map<std::uint64_t, std::set<obs::TraceFlow>> phases;
  std::map<std::uint64_t, std::set<int>> replica_tids;
  for (const obs::TraceEvent& ev : trace.events()) {
    if (ev.flow == obs::TraceFlow::kNone || ev.flow_id == 0) continue;
    phases[ev.flow_id].insert(ev.flow);
    if (ev.tid_override >= obs::kReplicaTrackBase) {
      replica_tids[ev.flow_id].insert(ev.tid_override);
    }
  }
  ASSERT_FALSE(phases.empty()) << "no flow events recorded";
  bool connected = false;
  for (const auto& [id, ph] : phases) {
    if (ph.count(obs::TraceFlow::kStart) && ph.count(obs::TraceFlow::kStep) &&
        ph.count(obs::TraceFlow::kEnd) && replica_tids[id].size() >= 3) {
      connected = true;
    }
  }
  EXPECT_TRUE(connected)
      << "expected a start->step->end flow spanning >= 3 replica tracks";
}

TEST_F(TraceFlow, ChromeJsonBindsFlowsAndNamesReplicaTracks) {
  bootstrap_and_acquire();
  std::string json = trace.chrome_json();
  // Flow binding events (s = start, t = step, f = finish) and the named
  // per-replica tracks must survive the export.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("paxos.replica-0"), std::string::npos);
  EXPECT_NE(json.find("paxos.replica-2"), std::string::npos);
}

TEST_F(TraceFlow, FlowsAreByteIdenticalAcrossRuns) {
  bootstrap_and_acquire();
  std::string first = trace.chrome_json();

  FlowHarness other;
  other.bootstrap_and_acquire();
  EXPECT_EQ(first, other.trace.chrome_json());
}

TEST_F(TraceFlow, NoContextMeansNoFlows) {
  // Without an installed context the same workload records nothing: the
  // zero-cost-when-disabled contract.
  group.bootstrap(5);
  sim.run_until(sim.now() + 200);
  lock::LockClient alice(group, sim, "alice", 7200);
  alice.open_session();
  alice.acquire("/flow/leader", nullptr);
  sim.run_until(sim.now() + 240);
  EXPECT_EQ(trace.size(), 0u);
}

TEST_F(TraceFlow, CommitSlotLagHistogramPopulated) {
  bootstrap_and_acquire();
  obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsSnapshot::Row* row = snap.find("paxos.commit_slot_lag");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, obs::MetricKind::kDetHistogram);
  EXPECT_GT(row->count, 0u);
}

}  // namespace
}  // namespace jupiter
