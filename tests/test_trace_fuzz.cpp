// Randomized oracle tests for SpotTrace queries against brute-force
// second-by-second scans.
#include <gtest/gtest.h>

#include "market/spot_trace.hpp"
#include "util/rng.hpp"

namespace jupiter {
namespace {

SpotTrace random_trace(Rng& rng, TimeDelta span) {
  SpotTrace tr;
  SimTime t(0);
  tr.append(t, PriceTick(static_cast<std::int32_t>(1 + rng.below(50))));
  while (true) {
    t += static_cast<TimeDelta>(1 + rng.below(900));
    if (t.seconds() >= span) break;
    tr.append(t, PriceTick(static_cast<std::int32_t>(1 + rng.below(50))));
  }
  return tr;
}

class TraceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TraceFuzz, QueriesMatchBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const TimeDelta span = 2 * kHour;
  SpotTrace tr = random_trace(rng, span);

  // price_at: walk the points directly.
  for (int q = 0; q < 50; ++q) {
    auto t = SimTime(static_cast<std::int64_t>(rng.below(span)));
    PriceTick expect = tr.points().front().price;
    for (const auto& p : tr.points()) {
      if (p.at <= t) expect = p.price;
    }
    EXPECT_EQ(tr.price_at(t), expect) << t.seconds();
  }

  // max_price / last_price_in over random windows.
  for (int q = 0; q < 30; ++q) {
    auto a = SimTime(static_cast<std::int64_t>(rng.below(span - 2)));
    SimTime b = a + static_cast<TimeDelta>(1 + rng.below(
                        static_cast<std::uint64_t>(span - a.seconds() - 1)));
    PriceTick max = tr.price_at(a);
    for (SimTime t = a; t < b; t += 1) {
      max = std::max(max, tr.price_at(t));
    }
    EXPECT_EQ(tr.max_price(a, b), max);
    EXPECT_EQ(tr.last_price_in(a, b), tr.price_at(b - 1));
  }

  // first_exceed against a scan.
  for (int q = 0; q < 20; ++q) {
    auto from = SimTime(static_cast<std::int64_t>(rng.below(span)));
    PriceTick bid(static_cast<std::int32_t>(1 + rng.below(50)));
    auto got = tr.first_exceed(from, bid);
    std::optional<SimTime> expect;
    for (SimTime t = from; t < SimTime(span + kHour); t += 1) {
      if (tr.price_at(t) > bid) {
        expect = t;
        break;
      }
    }
    // The scan only finds crossings at change points; both representations
    // must agree exactly because prices are piecewise constant.
    EXPECT_EQ(got, expect) << "from " << from.seconds() << " bid "
                           << bid.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace jupiter
