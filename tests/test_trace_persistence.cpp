#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "cloud/trace_book.hpp"

namespace jupiter {
namespace {

struct TempDir {
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("jupiter-traces-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::filesystem::path path;
};

TEST(TracePersistence, SaveLoadRoundTrip) {
  TempDir dir;
  std::vector<int> zones = {0, 4, 13};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(kWeek), 5);
  book.merge(TraceBook::synthetic(zones, InstanceKind::kM3Large, SimTime(0),
                                  SimTime(kWeek), 5));
  book.save_dir(dir.path.string());

  TraceBook loaded = TraceBook::load_dir(dir.path.string());
  for (int z : zones) {
    for (InstanceKind kind :
         {InstanceKind::kM1Small, InstanceKind::kM3Large}) {
      ASSERT_TRUE(loaded.has(z, kind)) << z;
      EXPECT_EQ(loaded.trace(z, kind).points(), book.trace(z, kind).points());
    }
  }
  // Profiles are synthetic-only metadata and do not survive persistence.
  EXPECT_FALSE(loaded.profile(0, InstanceKind::kM1Small).has_value());
}

TEST(TracePersistence, FileNamesAreZoneAndType) {
  TempDir dir;
  std::vector<int> zones = {0};
  TraceBook book = TraceBook::synthetic(zones, InstanceKind::kM1Small,
                                        SimTime(0), SimTime(kDay), 1);
  book.save_dir(dir.path.string());
  EXPECT_TRUE(std::filesystem::exists(
      dir.path / "us-east-1a.linux.m1.small.csv"));
}

TEST(TracePersistence, LoadIgnoresForeignFiles) {
  TempDir dir;
  std::filesystem::create_directories(dir.path);
  {
    std::ofstream os(dir.path / "README.txt");
    os << "not a trace";
  }
  {
    std::ofstream os(dir.path / "mars-base-1a.linux.m1.small.csv");
    os << "seconds,price_ticks\n0,5\n";
  }
  TraceBook book = TraceBook::load_dir(dir.path.string());
  EXPECT_TRUE(book.zones_for(InstanceKind::kM1Small).empty());
}

}  // namespace
}  // namespace jupiter
