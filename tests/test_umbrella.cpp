// Compilation test: the umbrella header pulls in the whole public surface
// without conflicts, and a few cross-module one-liners type-check.
#include "jupiter.hpp"

#include <gtest/gtest.h>

namespace jupiter {
namespace {

TEST(Umbrella, PublicSurfaceCompilesTogether) {
  EXPECT_EQ(ServiceSpec::lock_service().baseline_nodes, 5);
  EXPECT_EQ(AcceptanceSet::majority(3).universe_size(), 3);
  EXPECT_EQ(ReedSolomon(3, 5).parity_chunks(), 2);
  EXPECT_EQ(PriceTick::from_money(Money::from_dollars(0.0071)).value(), 71);
  EXPECT_EQ(kMaxStartupLead, 700);
  EXPECT_EQ(kExperimentSeed, 20150615u);
}

}  // namespace
}  // namespace jupiter
