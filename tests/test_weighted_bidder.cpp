// The §4.1 weighted-voting variant of the bidder: verification against the
// Eq. 11 acceptance set instead of simple majority.
#include <gtest/gtest.h>

#include "core/online_bidder.hpp"
#include "quorum/availability.hpp"

namespace jupiter {
namespace {

ZoneFailureModel two_level(int base, int top, double risk, PriceTick od) {
  SemiMarkovChain chain({PriceTick(base), PriceTick(top)});
  // Mean sojourn tuned so risk == P(leave base within 60 min) roughly.
  int soj = std::max(2, static_cast<int>(60.0 / std::max(risk, 1e-3)));
  chain.add_transition(0, 1, soj, 1.0);
  chain.add_transition(1, 0, 5, 1.0);
  chain.normalize_rows();
  return ZoneFailureModel(std::move(chain), od);
}

MarketZoneState st_of(int zone, int price, PriceTick od) {
  MarketZoneState st;
  st.zone = zone;
  st.price = PriceTick(price);
  st.age_minutes = 0;
  st.on_demand = od;
  return st;
}

TEST(WeightedBidder, NeverWorseThanMajorityVerification) {
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snap;
  for (int z = 0; z < 8; ++z) {
    int base = 60 + z * 7;
    models.set(z, two_level(base, base + 120, 0.02 + 0.01 * z, od));
    snap.push_back(st_of(z, base, od));
  }
  ServiceSpec spec = ServiceSpec::lock_service();
  OnlineBidder majority({.horizon_minutes = 60, .max_nodes = 8});
  OnlineBidder weighted(
      {.horizon_minutes = 60, .max_nodes = 8, .weighted_voting = true});
  BidDecision dm = majority.decide(models, snap, spec);
  BidDecision dw = weighted.decide(models, snap, spec);
  // The weighted check accepts a superset of configurations, so its
  // optimal bid sum can only be <= the majority-checked one.
  if (dm.satisfies_constraint && dw.satisfies_constraint) {
    EXPECT_LE(dw.bid_sum.micros(), dm.bid_sum.micros());
  }
  EXPECT_TRUE(dw.satisfies_constraint || !dm.satisfies_constraint);
}

TEST(WeightedBidder, ErasureSpecIgnoresWeightedFlag) {
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snap;
  for (int z = 0; z < 7; ++z) {
    int base = 60 + z * 7;
    models.set(z, two_level(base, base + 120, 0.02, od));
    snap.push_back(st_of(z, base, od));
  }
  ServiceSpec spec = ServiceSpec::storage_service();
  spec.kind = InstanceKind::kM1Small;
  OnlineBidder plain({.horizon_minutes = 60, .max_nodes = 7});
  OnlineBidder weighted(
      {.horizon_minutes = 60, .max_nodes = 7, .weighted_voting = true});
  BidDecision a = plain.decide(models, snap, spec);
  BidDecision b = weighted.decide(models, snap, spec);
  // Identical behaviour for RS-Paxos: intersection >= m is a threshold
  // property weighted votes cannot relax.
  EXPECT_EQ(a.bid_sum, b.bid_sum);
  EXPECT_EQ(a.nodes(), b.nodes());
}

TEST(WeightedBidder, VerificationValueMatchesEq1) {
  // Hand-check: the reported estimated_availability under weighted voting
  // equals Eq. 1 on the optimal acceptance set of the chosen FPs.
  PriceTick od(440);
  FailureModelBook models;
  MarketSnapshot snap;
  for (int z = 0; z < 5; ++z) {
    models.set(z, two_level(60 + z, 200 + z, 0.03, od));
    snap.push_back(st_of(z, 60 + z, od));
  }
  ServiceSpec spec = ServiceSpec::lock_service();
  OnlineBidder weighted(
      {.horizon_minutes = 60, .max_nodes = 5, .weighted_voting = true});
  BidDecision d = weighted.decide(models, snap, spec);
  if (!d.satisfies_constraint) GTEST_SKIP() << "market infeasible";
  std::vector<double> fps;
  for (const auto& e : d.bids) fps.push_back(e.estimated_fp);
  EXPECT_NEAR(d.estimated_availability,
              availability(optimal_acceptance_set(fps), fps), 1e-12);
}

}  // namespace
}  // namespace jupiter
