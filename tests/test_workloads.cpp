#include "replay/workloads.hpp"

#include <gtest/gtest.h>

#include "cloud/region.hpp"

namespace jupiter {
namespace {

TEST(Workloads, ScenarioWindowsLineUp) {
  Scenario sc = make_scenario(InstanceKind::kM1Small, 3, 2, 42);
  EXPECT_EQ(sc.history_start, SimTime(0));
  EXPECT_EQ(sc.replay_start, SimTime(3 * kWeek));
  EXPECT_EQ(sc.replay_end, SimTime(5 * kWeek));
  EXPECT_EQ(sc.zones.size(), 17u);
  for (int z : sc.zones) {
    EXPECT_TRUE(sc.book.has(z, InstanceKind::kM1Small));
    // Trace must cover the whole window.
    EXPECT_EQ(sc.book.trace(z, InstanceKind::kM1Small).start(), SimTime(0));
  }
}

TEST(Workloads, ScenarioDeterministicPerSeed) {
  Scenario a = make_scenario(InstanceKind::kM1Small, 1, 1, 9);
  Scenario b = make_scenario(InstanceKind::kM1Small, 1, 1, 9);
  for (int z : a.zones) {
    EXPECT_EQ(a.book.trace(z, InstanceKind::kM1Small).points(),
              b.book.trace(z, InstanceKind::kM1Small).points());
  }
}

TEST(Workloads, ReplayConfigMirrorsScenario) {
  Scenario sc = make_scenario(InstanceKind::kM3Large, 2, 1, 3);
  ServiceSpec spec = ServiceSpec::storage_service();
  ReplayConfig cfg = make_replay_config(sc, spec, 6 * kHour);
  EXPECT_EQ(cfg.interval, 6 * kHour);
  EXPECT_EQ(cfg.replay_start, sc.replay_start);
  EXPECT_EQ(cfg.replay_end, sc.replay_end);
  EXPECT_EQ(cfg.zones, sc.zones);
  EXPECT_EQ(cfg.spec.kind, InstanceKind::kM3Large);
}

// §5.5: the paper's on-demand baselines — $406.56 for the lock service and
// $1293.60 for the storage service over 11 weeks.
TEST(Workloads, BaselineCostsMatchPaper) {
  EXPECT_DOUBLE_EQ(
      baseline_cost(ServiceSpec::lock_service(), 11 * kWeek).dollars(),
      406.56);
  EXPECT_DOUBLE_EQ(
      baseline_cost(ServiceSpec::storage_service(), 11 * kWeek).dollars(),
      1293.60);
  // Feasibility week (§5.4): $36.96 and $117.60.
  EXPECT_DOUBLE_EQ(
      baseline_cost(ServiceSpec::lock_service(), kWeek).dollars(), 36.96);
  EXPECT_DOUBLE_EQ(
      baseline_cost(ServiceSpec::storage_service(), kWeek).dollars(), 117.60);
}

TEST(Workloads, BaselineRoundsUpPartialHours) {
  Money one_hour = baseline_cost(ServiceSpec::lock_service(), kHour);
  Money one_hour_plus = baseline_cost(ServiceSpec::lock_service(), kHour + 1);
  EXPECT_EQ(one_hour, Money::from_dollars(0.044) * 5);
  EXPECT_EQ(one_hour_plus, Money::from_dollars(0.044) * 10);
}

}  // namespace
}  // namespace jupiter
