// detlint — determinism/correctness linter for the jupiter tree.
//
// The reproduction's headline claims (bit-identical bidding decisions,
// seed-replayable chaos scenarios, exact integer billing over 11-week
// replays) rest on invariants the compiler never checks.  detlint scans the
// sources for the handful of constructs that historically break them:
//
//   banned-time       wall-clock sources (std::chrono::*_clock, time(),
//                     clock(), gettimeofday).  Simulation code must use
//                     SimTime; benchmarks that legitimately measure wall
//                     time annotate the site.
//   banned-random     <random> engines, std::rand/srand, random_device.
//                     All randomness flows through jupiter::Rng so streams
//                     are bit-identical across standard libraries.
//   hash-iteration    range-for / .begin() iteration over a variable
//                     declared as std::unordered_map/unordered_set.  Hash
//                     iteration order is the canonical way nondeterminism
//                     leaks into fingerprints, CSV reports, and Paxos
//                     message order.
//   float-money       double/float variables whose names look like money
//                     (price/bid/cost/bill/charge/pay) inside the billing
//                     paths (src/market, src/cloud).  Money is integer
//                     micro-dollars; floating-point drift breaks exact
//                     billing replay.
//   ptr-key-ordered   std::map/std::set keyed by a raw pointer: iteration
//                     order is address order, which varies run to run.
//   sim-std-function  std::function in the simulator hot paths (src/sim).
//                     Events carry InlineFunction (48-byte inline capture,
//                     compile-time size check); a std::function there
//                     silently reintroduces a heap allocation per event and
//                     undoes the allocation-free engine guarantee.
//
// Suppression: a site that is genuinely fine carries an inline annotation
// on the same line or the line directly above:
//
//   // detlint: allow(hash-iteration) — commutative integer sum, order-free
//
// The reason text after the dash is mandatory; an allow() without one (or
// naming an unknown rule) is itself an error (bad-suppression).  This keeps
// every exemption justified in the tree rather than in tribal knowledge.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Modes:
//   detlint --root DIR [--money-paths a,b] [--skip SUBSTR]... PATH...
//       Scan PATHs (files or directories) under DIR; print findings.
//   detlint --self-test FIXTURE_DIR
//       Run the fixture contract: <rule>_fail.cpp must trip exactly that
//       rule, clean_pass.cpp and suppression_ok.cpp must be clean, and
//       suppression_missing_reason.cpp must trip only bad-suppression.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

const std::vector<std::string> kRuleNames = {
    "banned-time",     "banned-random",   "hash-iteration",
    "float-money",     "ptr-key-ordered", "sim-std-function",
    "bad-suppression",
};

bool known_rule(const std::string& r) {
  return std::find(kRuleNames.begin(), kRuleNames.end(), r) != kRuleNames.end();
}

struct Finding {
  std::string file;  // path as given on the command line
  int line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::vector<std::string> rules;  // empty => malformed
  bool has_reason = false;
  bool malformed = false;  // allow(...) present but unparseable/unknown rule
  std::string detail;
};

// Parses every "detlint: allow(r1, r2) — reason" occurrence in a comment.
std::optional<Suppression> parse_suppression(const std::string& comment) {
  auto pos = comment.find("detlint:");
  if (pos == std::string::npos) return std::nullopt;
  Suppression s;
  auto allow = comment.find("allow", pos);
  if (allow == std::string::npos) {
    s.malformed = true;
    s.detail = "expected allow(<rule>) after 'detlint:'";
    return s;
  }
  auto open = comment.find('(', allow);
  auto close = comment.find(')', allow);
  if (open == std::string::npos || close == std::string::npos || close < open) {
    s.malformed = true;
    s.detail = "unbalanced parentheses in allow(...)";
    return s;
  }
  std::string inside = comment.substr(open + 1, close - open - 1);
  std::string cur;
  std::vector<std::string> rules;
  auto flush = [&] {
    // trim
    auto b = cur.find_first_not_of(" \t");
    auto e = cur.find_last_not_of(" \t");
    if (b != std::string::npos) rules.push_back(cur.substr(b, e - b + 1));
    cur.clear();
  };
  for (char c : inside) {
    if (c == ',') flush();
    else cur += c;
  }
  flush();
  if (rules.empty()) {
    s.malformed = true;
    s.detail = "allow() names no rule";
    return s;
  }
  for (const auto& r : rules) {
    if (!known_rule(r)) {
      s.malformed = true;
      s.detail = "unknown rule '" + r + "' in allow()";
      return s;
    }
  }
  s.rules = rules;
  // Reason: any non-space text after the closing paren, past an optional
  // dash (-, --, or the em-dash "—").
  std::string rest = comment.substr(close + 1);
  std::size_t i = 0;
  auto skip_ws = [&] { while (i < rest.size() && std::isspace(static_cast<unsigned char>(rest[i]))) ++i; };
  skip_ws();
  // UTF-8 em-dash is 0xE2 0x80 0x94; also accept ASCII hyphens and ':'.
  while (i < rest.size() &&
         (rest[i] == '-' || rest[i] == ':' ||
          static_cast<unsigned char>(rest[i]) == 0xE2 ||
          static_cast<unsigned char>(rest[i]) == 0x80 ||
          static_cast<unsigned char>(rest[i]) == 0x94)) {
    ++i;
  }
  skip_ws();
  s.has_reason = i < rest.size();
  return s;
}

struct Line {
  std::string code;     // comments and string/char literals blanked out
  std::string comment;  // concatenated comment text on this line
};

// Splits a source file into per-line code/comment streams.  String and char
// literal contents are blanked (so "std::rand" inside a string never
// matches); comment text is preserved separately for suppression parsing.
std::vector<Line> preprocess(const std::vector<std::string>& raw) {
  std::vector<Line> out(raw.size());
  bool in_block = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& s = raw[li];
    std::string code, comment;
    for (std::size_t i = 0; i < s.size();) {
      if (in_block) {
        if (s[i] == '*' && i + 1 < s.size() && s[i + 1] == '/') {
          in_block = false;
          i += 2;
        } else {
          comment += s[i++];
        }
        continue;
      }
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        comment.append(s.substr(i + 2));
        break;
      }
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        in_block = true;
        i += 2;
        continue;
      }
      if (s[i] == '"' || s[i] == '\'') {
        char q = s[i];
        code += q;
        ++i;
        while (i < s.size()) {
          if (s[i] == '\\' && i + 1 < s.size()) {
            code += "  ";
            i += 2;
            continue;
          }
          if (s[i] == q) break;
          code += ' ';
          ++i;
        }
        if (i < s.size()) {
          code += q;
          ++i;
        }
        continue;
      }
      code += s[i++];
    }
    out[li].code = std::move(code);
    out[li].comment = std::move(comment);
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `std::unordered_map<...>` / `std::unordered_set<...>` declarations
// and returns the declared identifiers.  `text` is the whole file's code
// stream joined by '\n' (declarations can span lines).
std::vector<std::string> unordered_decl_names(const std::string& text) {
  std::vector<std::string> names;
  static const std::string kKeys[] = {"std::unordered_map<",
                                      "std::unordered_set<"};
  for (const auto& key : kKeys) {
    std::size_t pos = 0;
    while ((pos = text.find(key, pos)) != std::string::npos) {
      std::size_t i = pos + key.size();
      int depth = 1;
      while (i < text.size() && depth > 0) {
        if (text[i] == '<') ++depth;
        else if (text[i] == '>') --depth;
        ++i;
      }
      // Skip refs/pointers/whitespace/cv between '>' and the identifier.
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) ||
              text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && ident_char(text[i])) name += text[i++];
      if (!name.empty() && name != "const") names.push_back(name);
      pos += key.size();
    }
  }
  return names;
}

struct ScanConfig {
  // Paths (substring match on the generic path) where float-money applies.
  std::vector<std::string> money_paths = {"src/market", "src/cloud"};
  // Paths where sim-std-function applies: the event-loop hot paths, where
  // every callback must be an InlineFunction.
  std::vector<std::string> sim_hot_paths = {"src/sim"};
  // Path substrings skipped entirely.
  std::vector<std::string> skips = {"tests/detlint_fixtures"};
  // Identifiers known to be unordered containers in *other* files (cross
  // file: members declared in a header, iterated in the .cpp).
  std::set<std::string> global_unordered;
};

bool path_in(const std::vector<std::string>& scopes, const std::string& path) {
  for (const auto& p : scopes) {
    if (path.find(p) != std::string::npos) return true;
  }
  return false;
}

const std::regex kBannedTime(
    R"((\b(system_clock|steady_clock|high_resolution_clock)\b)|(\btime\s*\(\s*(nullptr|NULL|0)?\s*\))|(\bgettimeofday\b)|(\bclock\s*\(\s*\)))");
const std::regex kBannedRandom(
    R"((\bstd\s*::\s*rand\b)|(\bsrand\b)|(\brandom_device\b)|(\bmt19937(_64)?\b)|(\bminstd_rand0?\b)|(\bdefault_random_engine\b)|(\branlux(24|48)(_base)?\b)|(\bknuth_b\b)|(#\s*include\s*<random>))");
const std::regex kRangeFor(R"(\bfor\s*\(([^;()]|\([^()]*\))*:\s*([A-Za-z_]\w*)\s*\))");
const std::regex kFloatMoney(
    R"(\b(double|float)\s+(\w*(price|bid|cost|bill|charge|pay|revenue)\w*)\b)",
    std::regex::icase);

// First top-level template argument of std::map</std::set< at `pos` (which
// points just past the '<').  Returns the trimmed argument text.
std::string first_template_arg(const std::string& text, std::size_t pos) {
  int depth = 1;
  std::string arg;
  while (pos < text.size() && depth > 0) {
    char c = text[pos];
    if (c == '<' || c == '(') ++depth;
    else if (c == '>' || c == ')') {
      --depth;
      if (depth == 0) break;
    } else if (c == ',' && depth == 1) {
      break;
    }
    arg += c;
    ++pos;
  }
  auto b = arg.find_first_not_of(" \t\n");
  auto e = arg.find_last_not_of(" \t\n");
  if (b == std::string::npos) return "";
  return arg.substr(b, e - b + 1);
}

void scan_file(const fs::path& file, const std::string& display_path,
               const ScanConfig& cfg, std::vector<Finding>& findings) {
  std::ifstream in(file);
  if (!in) {
    findings.push_back({display_path, 0, "bad-suppression",
                        "cannot open file"});
    return;
  }
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) raw.push_back(line);
  std::vector<Line> lines = preprocess(raw);

  std::string all_code;
  for (const auto& l : lines) {
    all_code += l.code;
    all_code += '\n';
  }

  // Local container names: everything declared in this file, plus the
  // cross-file table restricted to plausible member/long names.
  std::set<std::string> unordered_names(cfg.global_unordered);
  for (const auto& n : unordered_decl_names(all_code)) {
    unordered_names.insert(n);
  }

  // Suppressions per line: rule set that is allowed on that line.
  std::vector<std::set<std::string>> allowed(lines.size() + 1);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    if (lines[li].comment.find("detlint") == std::string::npos) continue;
    auto sup = parse_suppression(lines[li].comment);
    if (!sup) continue;
    int ln = static_cast<int>(li) + 1;
    if (sup->malformed) {
      findings.push_back({display_path, ln, "bad-suppression", sup->detail});
      continue;
    }
    if (!sup->has_reason) {
      // The annotation itself is the finding; it still masks the target
      // rule so the fix is "write the reason", not two overlapping errors.
      findings.push_back(
          {display_path, ln, "bad-suppression",
           "allow() without a reason — append '— <why this site is safe>'"});
    }
    // Applies to this line and, for comment-above style, the next line.
    for (const auto& r : sup->rules) {
      allowed[li].insert(r);
      if (li + 1 < allowed.size()) allowed[li + 1].insert(r);
    }
  }

  auto report = [&](std::size_t li, const std::string& rule,
                    const std::string& msg) {
    if (allowed[li].count(rule)) return;
    findings.push_back({display_path, static_cast<int>(li) + 1, rule, msg});
  };

  bool money_scope = path_in(cfg.money_paths, display_path);
  bool sim_scope = path_in(cfg.sim_hot_paths, display_path);

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    if (code.empty()) continue;
    std::smatch m;

    if (std::regex_search(code, m, kBannedTime)) {
      report(li, "banned-time",
             "wall-clock source '" + m.str() +
                 "' — simulation code must use SimTime");
    }
    if (std::regex_search(code, m, kBannedRandom)) {
      report(li, "banned-random",
             "non-deterministic randomness '" + m.str() +
                 "' — use jupiter::Rng (bit-identical across stdlibs)");
    }
    // hash-iteration: range-for over a known unordered container...
    auto begin_it = std::sregex_iterator(code.begin(), code.end(), kRangeFor);
    for (auto it = begin_it; it != std::sregex_iterator(); ++it) {
      std::string range = (*it)[2].str();
      if (unordered_names.count(range)) {
        report(li, "hash-iteration",
               "range-for over unordered container '" + range +
                   "' — hash order leaks nondeterminism; use a sorted "
                   "container or sort the keys first");
      }
    }
    // ...or an explicit .begin()/.cbegin() call on one.
    for (const auto& n : unordered_names) {
      for (const char* meth : {".begin()", ".cbegin()", ".rbegin()"}) {
        if (code.find(n + meth) != std::string::npos) {
          report(li, "hash-iteration",
                 "iterator over unordered container '" + n +
                     "' — hash order leaks nondeterminism");
        }
      }
    }
    if (sim_scope && code.find("std::function") != std::string::npos) {
      report(li, "sim-std-function",
             "std::function in a simulator hot path — events carry "
             "InlineFunction (inline capture, no per-event allocation); use "
             "Simulator::Callback, or Callback::boxed() for a deliberate, "
             "counted allocation");
    }
    if (money_scope && std::regex_search(code, m, kFloatMoney)) {
      report(li, "float-money",
             "floating-point money variable '" + m[2].str() +
                 "' in a billing path — use Money (integer micro-dollars)");
    }
    // ptr-key-ordered: std::map< / std::set< with a pointer first arg.  The
    // key type may wrap onto the next line, so parse from a small window
    // starting at the match.
    std::string window = code;
    for (std::size_t w = li + 1; w < lines.size() && w < li + 4; ++w) {
      window += '\n';
      window += lines[w].code;
    }
    for (const std::string key : {"std::map<", "std::set<"}) {
      std::size_t pos = 0;
      while ((pos = window.find(key, pos)) != std::string::npos) {
        if (pos >= code.size()) break;  // starts on a later line
        std::string a = first_template_arg(window, pos + key.size());
        if (!a.empty() && a.back() == '*') {
          report(li, "ptr-key-ordered",
                 "ordered container keyed by raw pointer '" + a +
                     "' — iteration order is address order, which varies "
                     "run to run");
        }
        pos += key.size();
      }
    }
  }
}

void collect_files(const fs::path& root, const std::string& rel,
                   const ScanConfig& cfg,
                   std::vector<std::pair<fs::path, std::string>>& files) {
  fs::path p = root / rel;
  auto keep = [&](const fs::path& f, const std::string& disp) {
    auto ext = f.extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") return;
    for (const auto& s : cfg.skips) {
      if (disp.find(s) != std::string::npos) return;
    }
    files.emplace_back(f, disp);
  };
  if (fs::is_regular_file(p)) {
    keep(p, rel);
    return;
  }
  if (!fs::is_directory(p)) {
    std::cerr << "detlint: no such path: " << p << "\n";
    std::exit(2);
  }
  std::vector<fs::path> entries;
  for (const auto& e : fs::recursive_directory_iterator(p)) {
    if (e.is_regular_file()) entries.push_back(e.path());
  }
  std::sort(entries.begin(), entries.end());  // deterministic report order
  for (const auto& f : entries) {
    keep(f, fs::relative(f, root).generic_string());
  }
}

std::vector<Finding> run_scan(const fs::path& root,
                              const std::vector<std::string>& rel_paths,
                              ScanConfig cfg) {
  std::vector<std::pair<fs::path, std::string>> files;
  for (const auto& rp : rel_paths) collect_files(root, rp, cfg, files);

  // Pass 1: cross-file unordered-container symbol table.  Only names that
  // look like members (trailing '_') or are >= 3 chars join the global
  // table — single-letter locals would poison unrelated files.
  for (const auto& [file, disp] : files) {
    std::ifstream in(file);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string contents = ss.str();
    std::vector<std::string> raw;
    {
      std::istringstream is(contents);
      for (std::string line; std::getline(is, line);) raw.push_back(line);
    }
    auto lines = preprocess(raw);
    std::string code;
    for (const auto& l : lines) {
      code += l.code;
      code += '\n';
    }
    for (const auto& n : unordered_decl_names(code)) {
      if (n.size() >= 3 || n.back() == '_') cfg.global_unordered.insert(n);
    }
  }

  std::vector<Finding> findings;
  for (const auto& [file, disp] : files) scan_file(file, disp, cfg, findings);
  return findings;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
}

// ---- self-test -------------------------------------------------------------

int self_test(const fs::path& fixture_dir) {
  struct Case {
    std::string file;
    // expected: rule that every finding must carry; empty => must be clean
    std::string rule;
    bool must_find = true;
  };
  const std::vector<Case> cases = {
      {"banned_time_fail.cpp", "banned-time", true},
      {"banned_random_fail.cpp", "banned-random", true},
      {"hash_iteration_fail.cpp", "hash-iteration", true},
      {"float_money_fail.cpp", "float-money", true},
      {"ptr_key_ordered_fail.cpp", "ptr-key-ordered", true},
      {"sim_std_function_fail.cpp", "sim-std-function", true},
      {"suppression_missing_reason.cpp", "bad-suppression", true},
      {"obs_wall_timer_fail.cpp", "banned-time", true},
      {"clean_pass.cpp", "", false},
      {"suppression_ok.cpp", "", false},
  };
  int failures = 0;
  for (const auto& c : cases) {
    fs::path f = fixture_dir / c.file;
    if (!fs::exists(f)) {
      std::cerr << "self-test: missing fixture " << f << "\n";
      ++failures;
      continue;
    }
    ScanConfig cfg;
    cfg.skips.clear();
    // Fixtures live outside src/market and src/sim — put them in both
    // scopes so the path-gated fixtures can trip.
    cfg.money_paths = {fixture_dir.generic_string()};
    cfg.sim_hot_paths = {fixture_dir.generic_string()};
    std::vector<Finding> findings;
    scan_file(f, (fixture_dir / c.file).generic_string(), cfg, findings);
    if (!c.must_find) {
      if (!findings.empty()) {
        std::cerr << "self-test: " << c.file << " must be clean but found:\n";
        print_findings(findings);
        ++failures;
      }
      continue;
    }
    if (findings.empty()) {
      std::cerr << "self-test: " << c.file << " tripped nothing (expected "
                << c.rule << ")\n";
      ++failures;
      continue;
    }
    for (const auto& fd : findings) {
      if (fd.rule != c.rule) {
        std::cerr << "self-test: " << c.file << " tripped unexpected rule ["
                  << fd.rule << "] at line " << fd.line << " (expected only "
                  << c.rule << ")\n";
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::cout << "detlint self-test: " << cases.size() << " fixtures ok\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  fs::path root = fs::current_path();
  ScanConfig cfg;
  std::vector<std::string> paths;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "detlint: " << a << " needs an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--root") {
      root = next();
    } else if (a == "--self-test") {
      return self_test(next());
    } else if (a == "--money-paths") {
      cfg.money_paths.clear();
      std::string csv = next(), cur;
      for (char c : csv) {
        if (c == ',') {
          if (!cur.empty()) cfg.money_paths.push_back(cur);
          cur.clear();
        } else {
          cur += c;
        }
      }
      if (!cur.empty()) cfg.money_paths.push_back(cur);
    } else if (a == "--skip") {
      cfg.skips.push_back(next());
    } else if (a == "--help" || a == "-h") {
      std::cout
          << "usage: detlint [--root DIR] [--money-paths a,b] [--skip S]... "
             "PATH...\n       detlint --self-test FIXTURE_DIR\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "detlint: unknown flag " << a << "\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples"};

  auto findings = run_scan(root, paths, cfg);
  print_findings(findings);
  if (findings.empty()) {
    std::cout << "detlint: clean (" << paths.size() << " roots)\n";
    return 0;
  }
  std::cout << "detlint: " << findings.size() << " finding(s)\n";
  return 1;
}
