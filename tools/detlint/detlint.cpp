// detlint — determinism/correctness linter for the jupiter tree.
//
// The reproduction's headline claims (bit-identical bidding decisions,
// seed-replayable chaos scenarios, exact integer billing over 11-week
// replays) rest on invariants the compiler never checks.  detlint scans the
// sources for the handful of constructs that historically break them:
//
//   banned-time       wall-clock sources (std::chrono::*_clock, time(),
//                     clock(), gettimeofday).  Simulation code must use
//                     SimTime; benchmarks that legitimately measure wall
//                     time annotate the site.
//   banned-random     <random> engines, std::rand/srand, random_device.
//                     All randomness flows through jupiter::Rng so streams
//                     are bit-identical across standard libraries.
//   hash-iteration    range-for / .begin() iteration over a variable
//                     declared as std::unordered_map/unordered_set.  Hash
//                     iteration order is the canonical way nondeterminism
//                     leaks into fingerprints, CSV reports, and Paxos
//                     message order.
//   float-money       double/float variables whose names look like money
//                     (price/bid/cost/bill/charge/pay) inside the billing
//                     paths (src/market, src/cloud).  Money is integer
//                     micro-dollars; floating-point drift breaks exact
//                     billing replay.
//   float-duration    double/float variables whose names look like timing
//                     knobs (timeout/lease/duration/window/deadline/period/
//                     delay/heartbeat/expiry), anywhere in the tree.  The
//                     data plane's lease math compares validity instants
//                     for exact mutual exclusion; durations are integer
//                     sim-seconds (SimTime/TimeDelta), and a float timeout
//                     reintroduces drift the deterministic clock removed.
//   ptr-key-ordered   std::map/std::set keyed by a raw pointer: iteration
//                     order is address order, which varies run to run.
//   sim-std-function  std::function in the simulator hot paths (src/sim).
//                     Events carry InlineFunction (48-byte inline capture,
//                     compile-time size check); a std::function there
//                     silently reintroduces a heap allocation per event and
//                     undoes the allocation-free engine guarantee.
//
// The parlint family sees concurrency.  Since the fleet layer, every hot
// path runs on the nested-safe parallel_for, and the thread-count
// determinism contract (fingerprints identical across pool sizes {1,2,hw})
// only holds if no parallel body touches shared mutable state outside a
// declared ownership discipline:
//
//   par-shared        a mutable `static` (function-local or class/namespace
//                     scope) declared in a translation unit that also uses
//                     parallel_for.  Statics are process-wide; a parallel
//                     body reaching one is a race or an ordering leak.
//                     Annotate deliberate ones:
//                       // detlint: allow(par-shared) — <why safe>
//   par-registry      a mutable `static` container (map/set/vector/deque,
//                     ordered or not) in ANY translation unit — the
//                     "shared() registry" pattern.  Every such registry
//                     must be listed in the checked manifest
//                     (tools/detlint/par_shared_manifest.txt, passed via
//                     --manifest); unlisted registries and stale manifest
//                     entries are both findings.  This mechanizes the old
//                     hand-performed docs/fleet.md single-market audit.
//   par-ref-capture   a lambda with a by-reference (or `this`) capture
//                     passed to parallel_for without an ownership
//                     annotation.  Write one of
//                       // par: owned    (each index writes disjoint state)
//                       // par: merged   (results merged deterministically
//                                         after the join)
//                     on the call line or up to two lines above.  A `par:`
//                     annotation naming anything else is bad-suppression.
//   par-order-dep     an order-sensitive reduction inside a parallel_for
//                     body: `x += ...` or `x.push_back(...)` where x is not
//                     declared in the body and not indexed per-iteration.
//                     Accumulate into per-index slots and merge after the
//                     join instead; a deliberate site (e.g. under its own
//                     mutex with commutative math) carries
//                       // detlint: allow(par-order-dep) — <why>
//
// Suppression: a site that is genuinely fine carries an inline annotation
// on the same line or the line directly above:
//
//   // detlint: allow(hash-iteration) — commutative integer sum, order-free
//
// The reason text after the dash is mandatory; an allow() without one (or
// naming an unknown rule) is itself an error (bad-suppression).  This keeps
// every exemption justified in the tree rather than in tribal knowledge.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Modes:
//   detlint --root DIR [--money-paths a,b] [--skip SUBSTR]...
//           [--manifest FILE] [--json] [--no-skip] PATH...
//       Scan PATHs (files or directories) under DIR; print findings
//       (human-readable, or a JSON array under --json).
//   detlint --self-test FIXTURE_DIR
//       Run the fixture contract: <rule>_fail.cpp must trip exactly that
//       rule, *_pass.cpp / *_ok.cpp must be clean, and the case table must
//       cover every rule in the rule list.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

const std::vector<std::string> kRuleNames = {
    "banned-time",     "banned-random",   "hash-iteration",
    "float-money",     "float-duration",  "ptr-key-ordered",
    "sim-std-function", "par-shared",     "par-registry",
    "par-ref-capture", "par-order-dep",   "bad-suppression",
};

bool known_rule(const std::string& r) {
  return std::find(kRuleNames.begin(), kRuleNames.end(), r) != kRuleNames.end();
}

struct Finding {
  std::string file;  // path as given on the command line
  int line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::vector<std::string> rules;  // empty => malformed
  bool has_reason = false;
  bool malformed = false;  // allow(...) present but unparseable/unknown rule
  std::string detail;
};

// Parses a suppression comment: the marker token, then the allowed rule
// list in parentheses, then the mandatory reason past a dash.
std::optional<Suppression> parse_suppression(const std::string& comment) {
  auto pos = comment.find("detlint:");
  if (pos == std::string::npos) return std::nullopt;
  Suppression s;
  auto allow = comment.find("allow", pos);
  if (allow == std::string::npos) {
    s.malformed = true;
    s.detail = "expected allow(<rule>) after 'detlint:'";
    return s;
  }
  auto open = comment.find('(', allow);
  auto close = comment.find(')', allow);
  if (open == std::string::npos || close == std::string::npos || close < open) {
    s.malformed = true;
    s.detail = "unbalanced parentheses in allow(...)";
    return s;
  }
  std::string inside = comment.substr(open + 1, close - open - 1);
  std::string cur;
  std::vector<std::string> rules;
  auto flush = [&] {
    // trim
    auto b = cur.find_first_not_of(" \t");
    auto e = cur.find_last_not_of(" \t");
    if (b != std::string::npos) rules.push_back(cur.substr(b, e - b + 1));
    cur.clear();
  };
  for (char c : inside) {
    if (c == ',') flush();
    else cur += c;
  }
  flush();
  if (rules.empty()) {
    s.malformed = true;
    s.detail = "allow() names no rule";
    return s;
  }
  for (const auto& r : rules) {
    if (!known_rule(r)) {
      s.malformed = true;
      s.detail = "unknown rule '" + r + "' in allow()";
      return s;
    }
  }
  s.rules = rules;
  // Reason: any non-space text after the closing paren, past an optional
  // dash (-, --, or the em-dash "—").
  std::string rest = comment.substr(close + 1);
  std::size_t i = 0;
  auto skip_ws = [&] { while (i < rest.size() && std::isspace(static_cast<unsigned char>(rest[i]))) ++i; };
  skip_ws();
  // UTF-8 em-dash is 0xE2 0x80 0x94; also accept ASCII hyphens and ':'.
  while (i < rest.size() &&
         (rest[i] == '-' || rest[i] == ':' ||
          static_cast<unsigned char>(rest[i]) == 0xE2 ||
          static_cast<unsigned char>(rest[i]) == 0x80 ||
          static_cast<unsigned char>(rest[i]) == 0x94)) {
    ++i;
  }
  skip_ws();
  s.has_reason = i < rest.size();
  return s;
}

struct Line {
  std::string code;     // comments and string/char literals blanked out
  std::string comment;  // concatenated comment text on this line
};

// Splits a source file into per-line code/comment streams.  String and char
// literal contents are blanked (so "std::rand" inside a string never
// matches); comment text is preserved separately for suppression parsing.
std::vector<Line> preprocess(const std::vector<std::string>& raw) {
  std::vector<Line> out(raw.size());
  bool in_block = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& s = raw[li];
    std::string code, comment;
    for (std::size_t i = 0; i < s.size();) {
      if (in_block) {
        if (s[i] == '*' && i + 1 < s.size() && s[i + 1] == '/') {
          in_block = false;
          i += 2;
        } else {
          comment += s[i++];
        }
        continue;
      }
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        comment.append(s.substr(i + 2));
        break;
      }
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        in_block = true;
        i += 2;
        continue;
      }
      if (s[i] == '"' || s[i] == '\'') {
        char q = s[i];
        code += q;
        ++i;
        while (i < s.size()) {
          if (s[i] == '\\' && i + 1 < s.size()) {
            code += "  ";
            i += 2;
            continue;
          }
          if (s[i] == q) break;
          code += ' ';
          ++i;
        }
        if (i < s.size()) {
          code += q;
          ++i;
        }
        continue;
      }
      code += s[i++];
    }
    out[li].code = std::move(code);
    out[li].comment = std::move(comment);
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True iff text[pos..pos+word.size()) is `word` as a whole token.
bool token_at(const std::string& text, std::size_t pos,
              const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  std::size_t end = pos + word.size();
  if (end < text.size() && ident_char(text[end])) return false;
  return true;
}

// True iff `word` occurs anywhere in `text` as a whole token.
bool has_token(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    if (token_at(text, pos, word)) return true;
    pos += 1;
  }
  return false;
}

// Finds `std::unordered_map<...>` / `std::unordered_set<...>` declarations
// and returns the declared identifiers.  `text` is the whole file's code
// stream joined by '\n' (declarations can span lines).
std::vector<std::string> unordered_decl_names(const std::string& text) {
  std::vector<std::string> names;
  static const std::string kKeys[] = {"std::unordered_map<",
                                      "std::unordered_set<"};
  for (const auto& key : kKeys) {
    std::size_t pos = 0;
    while ((pos = text.find(key, pos)) != std::string::npos) {
      std::size_t i = pos + key.size();
      int depth = 1;
      while (i < text.size() && depth > 0) {
        if (text[i] == '<') ++depth;
        else if (text[i] == '>') --depth;
        ++i;
      }
      // Skip refs/pointers/whitespace/cv between '>' and the identifier.
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) ||
              text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && ident_char(text[i])) name += text[i++];
      if (!name.empty() && name != "const") names.push_back(name);
      pos += key.size();
    }
  }
  return names;
}

// One line of the par-shared/par-registry manifest:
//   <display-path>:<identifier> — <reason>
struct ManifestEntry {
  std::string path;
  std::string name;
  std::string reason;
  int line = 0;          // line in the manifest file, for stale reports
  bool used = false;     // matched by a scanned registry declaration
};

struct ScanConfig {
  // Paths (substring match on the generic path) where float-money applies.
  std::vector<std::string> money_paths = {"src/market", "src/cloud"};
  // Paths where sim-std-function applies: the event-loop hot paths, where
  // every callback must be an InlineFunction.
  std::vector<std::string> sim_hot_paths = {"src/sim"};
  // Path substrings skipped entirely.
  std::vector<std::string> skips = {"tests/detlint_fixtures"};
  // Identifiers known to be unordered containers in *other* files (cross
  // file: members declared in a header, iterated in the .cpp).
  std::set<std::string> global_unordered;
  // The par-registry manifest (display path of the file it came from, for
  // stale-entry reports).
  std::vector<ManifestEntry> manifest;
  std::string manifest_path;
};

bool path_in(const std::vector<std::string>& scopes, const std::string& path) {
  for (const auto& p : scopes) {
    if (path.find(p) != std::string::npos) return true;
  }
  return false;
}

const std::regex kBannedTime(
    R"((\b(system_clock|steady_clock|high_resolution_clock)\b)|(\btime\s*\(\s*(nullptr|NULL|0)?\s*\))|(\bgettimeofday\b)|(\bclock\s*\(\s*\)))");
const std::regex kBannedRandom(
    R"((\bstd\s*::\s*rand\b)|(\bsrand\b)|(\brandom_device\b)|(\bmt19937(_64)?\b)|(\bminstd_rand0?\b)|(\bdefault_random_engine\b)|(\branlux(24|48)(_base)?\b)|(\bknuth_b\b)|(#\s*include\s*<random>))");
const std::regex kRangeFor(R"(\bfor\s*\(([^;()]|\([^()]*\))*:\s*([A-Za-z_]\w*)\s*\))");
const std::regex kFloatMoney(
    R"(\b(double|float)\s+(\w*(price|bid|cost|bill|charge|pay|revenue)\w*)\b)",
    std::regex::icase);
// Timing knobs are integer sim-seconds everywhere — this one is not path
// gated: a float lease duration anywhere would leak drift into the lease
// fencing comparisons.
const std::regex kFloatDuration(
    R"(\b(double|float)\s+(\w*(timeout|lease|duration|window|deadline|period|delay|heartbeat|expiry)\w*)\b)",
    std::regex::icase);

// First top-level template argument of std::map</std::set< at `pos` (which
// points just past the '<').  Returns the trimmed argument text.
std::string first_template_arg(const std::string& text, std::size_t pos) {
  int depth = 1;
  std::string arg;
  while (pos < text.size() && depth > 0) {
    char c = text[pos];
    if (c == '<' || c == '(') ++depth;
    else if (c == '>' || c == ')') {
      --depth;
      if (depth == 0) break;
    } else if (c == ',' && depth == 1) {
      break;
    }
    arg += c;
    ++pos;
  }
  auto b = arg.find_first_not_of(" \t\n");
  auto e = arg.find_last_not_of(" \t\n");
  if (b == std::string::npos) return "";
  return arg.substr(b, e - b + 1);
}

// ---- parlint helpers -------------------------------------------------------

// The spelled-out name of the fan-out entry point.  Built from pieces so the
// code stream of this very file does not itself contain the token (detlint
// lints tools/, and par-shared keys off the token's presence in a TU).
const std::string kParFn = std::string("parallel") + "_for";

// Maps a byte offset in the joined code stream back to its 0-based line.
struct LineMap {
  std::vector<std::size_t> starts;  // starts[i] = offset of line i
  std::size_t line_of(std::size_t off) const {
    auto it = std::upper_bound(starts.begin(), starts.end(), off);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
  }
};

// Result of parsing one `static` declaration out of the code stream.
struct StaticDecl {
  std::size_t line = 0;   // 0-based line of the `static` keyword
  std::string text;       // declaration text, `static` .. terminator
  std::string name;       // declared identifier (best effort)
  bool is_function = false;
  bool is_immutable = false;  // const/constexpr/constinit/thread_local
  bool is_container = false;  // registry-shaped (map/set/vector/deque)
};

// Last identifier of a declaration after stripping template argument lists
// and array extents — `static std::map<K, V>* registry` -> "registry".
std::string decl_name(const std::string& decl) {
  std::string flat;
  int angle = 0;
  for (std::size_t i = 0; i < decl.size(); ++i) {
    char c = decl[i];
    if (c == '<') { ++angle; continue; }
    if (c == '>') { if (angle > 0) --angle; continue; }
    if (angle == 0) flat += c;
  }
  std::string name, cur;
  for (std::size_t i = 0; i <= flat.size(); ++i) {
    char c = i < flat.size() ? flat[i] : ' ';
    if (ident_char(c)) {
      cur += c;
    } else {
      if (!cur.empty()) name = cur;
      cur.clear();
      if (c == '[') break;  // array extent: name precedes it
    }
  }
  return name;
}

// Scans the joined code stream for `static` variable declarations.
std::vector<StaticDecl> collect_statics(const std::string& text,
                                        const LineMap& lm) {
  static const char* kContainerKeys[] = {
      "std::map<",    "std::unordered_map<", "std::set<",
      "std::unordered_set<", "std::vector<", "std::deque<"};
  std::vector<StaticDecl> out;
  std::size_t pos = 0;
  while ((pos = text.find("static", pos)) != std::string::npos) {
    if (!token_at(text, pos, "static")) {
      pos += 6;
      continue;
    }
    StaticDecl d;
    d.line = lm.line_of(pos);
    // Walk to the declaration terminator: `;`, `=` or `{` at top level.  A
    // top-level `(` first means this is a function declaration/definition.
    std::size_t i = pos;
    int angle = 0;
    const std::size_t limit = std::min(text.size(), pos + 600);
    while (i < limit) {
      char c = text[i];
      if (c == '<') ++angle;
      else if (c == '>') { if (angle > 0) --angle; }
      else if (angle == 0) {
        if (c == '(') { d.is_function = true; break; }
        if (c == ';' || c == '=' || c == '{') break;
      }
      ++i;
    }
    d.text = text.substr(pos, i - pos);
    pos = i + 1;
    if (d.is_function) continue;
    d.is_immutable = has_token(d.text, "const") ||
                     has_token(d.text, "constexpr") ||
                     has_token(d.text, "constinit") ||
                     has_token(d.text, "thread_local");
    for (const char* key : kContainerKeys) {
      if (d.text.find(key) != std::string::npos) {
        d.is_container = true;
        break;
      }
    }
    d.name = decl_name(d.text);
    out.push_back(std::move(d));
  }
  return out;
}

// Matching close for the opener at `open` ('(' or '{' or '[') in blanked
// code.  Returns npos if unbalanced.
std::size_t match_close(const std::string& text, std::size_t open) {
  char o = text[open];
  char c = o == '(' ? ')' : o == '{' ? '}' : ']';
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == o) ++depth;
    else if (text[i] == c && --depth == 0) return i;
  }
  return std::string::npos;
}

// A lambda introducer inside an argument list: `[` whose previous
// non-whitespace char is `(` or `,`.
bool is_capture_open(const std::string& text, std::size_t pos) {
  std::size_t j = pos;
  while (j > 0) {
    char p = text[j - 1];
    if (std::isspace(static_cast<unsigned char>(p))) { --j; continue; }
    return p == '(' || p == ',';
  }
  return false;
}

struct ParCall {
  std::size_t line = 0;        // 0-based line of the call
  std::size_t open = 0;        // offset of the call's '('
  std::size_t close = 0;       // offset of the matching ')'
  bool has_ref_capture = false;
  std::size_t lambda_line = 0; // 0-based line of the first ref-capturing '['
  std::size_t body_open = std::string::npos;   // offset of the body '{'
  std::size_t body_close = std::string::npos;
};

// Finds every parallel_for *call* (token followed by '(').  The function's
// own declaration/definition has a parameter list with no lambda inside, so
// it yields a ParCall with no captures and an empty body — harmless.
std::vector<ParCall> collect_par_calls(const std::string& text,
                                       const LineMap& lm) {
  std::vector<ParCall> out;
  std::size_t pos = 0;
  while ((pos = text.find(kParFn, pos)) != std::string::npos) {
    if (!token_at(text, pos, kParFn)) {
      pos += kParFn.size();
      continue;
    }
    std::size_t i = pos + kParFn.size();
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size() || text[i] != '(') {
      pos = i;
      continue;
    }
    ParCall call;
    call.line = lm.line_of(pos);
    call.open = i;
    call.close = match_close(text, i);
    if (call.close == std::string::npos) {
      pos = i;
      continue;
    }
    // Lambdas inside the call's argument extent.
    for (std::size_t j = call.open + 1; j < call.close; ++j) {
      if (text[j] != '[' || !is_capture_open(text, j)) continue;
      std::size_t cap_close = match_close(text, j);
      if (cap_close == std::string::npos || cap_close > call.close) break;
      std::string caps = text.substr(j + 1, cap_close - j - 1);
      bool by_ref = caps.find('&') != std::string::npos ||
                    has_token(caps, "this");
      if (by_ref && !call.has_ref_capture) {
        call.has_ref_capture = true;
        call.lambda_line = lm.line_of(j);
      }
      if (call.body_open == std::string::npos) {
        // Body: first '{' after the capture list (skipping the parameter
        // list if present).
        std::size_t k = cap_close + 1;
        while (k < call.close &&
               std::isspace(static_cast<unsigned char>(text[k]))) {
          ++k;
        }
        if (k < call.close && text[k] == '(') {
          std::size_t pc = match_close(text, k);
          if (pc == std::string::npos) break;
          k = pc + 1;
        }
        while (k < call.close && text[k] != '{') ++k;
        if (k < call.close) {
          std::size_t bc = match_close(text, k);
          if (bc != std::string::npos && bc <= call.close) {
            call.body_open = k;
            call.body_close = bc;
          }
        }
      }
      j = cap_close;
    }
    out.push_back(call);
    pos = call.open;
  }
  return out;
}

// Root identifier of the expression ending just before `end` — for
// `slots[i].second.x` returns "slots".  Walks back through identifier
// chars, `.`, `->`, and balanced `[...]` / `(...)` groups.
std::string root_ident_before(const std::string& text, std::size_t end) {
  std::size_t i = end;
  auto skip_group = [&](char close, char open) {
    int depth = 0;
    while (i > 0) {
      char c = text[i - 1];
      if (c == close) ++depth;
      else if (c == open && --depth == 0) { --i; return; }
      --i;
    }
  };
  while (i > 0) {
    char c = text[i - 1];
    if (ident_char(c)) { --i; continue; }
    if (c == ']') { skip_group(']', '['); continue; }
    if (c == ')') { skip_group(')', '('); continue; }
    if (c == '.') { --i; continue; }
    if (c == '>' && i > 1 && text[i - 2] == '-') { i -= 2; continue; }
    break;
  }
  // First identifier from position i.
  std::string name;
  while (i < end && ident_char(text[i])) name += text[i++];
  return name;
}

// Heuristic: is `name` declared inside `body`?  True if some occurrence is
// preceded (ignoring spaces) by an identifier char, `>`, `*` or `&` — i.e.
// a type precedes it.  Errs toward "local" (fewer findings).
bool declared_in(const std::string& body, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = body.find(name, pos)) != std::string::npos) {
    if (!token_at(body, pos, name)) { pos += 1; continue; }
    std::size_t j = pos;
    while (j > 0 && (body[j - 1] == ' ' || body[j - 1] == '\t')) --j;
    if (j > 0) {
      char p = body[j - 1];
      if (ident_char(p) || p == '>' || p == '*' || p == '&') return true;
    }
    pos += name.size();
  }
  return false;
}

// The `// par: owned` / `// par: merged` annotation grammar.  Returns the
// word after `par:` if present (empty optional if no annotation).
std::optional<std::string> parse_par_annotation(const std::string& comment) {
  std::size_t pos = 0;
  while ((pos = comment.find("par:", pos)) != std::string::npos) {
    if (pos > 0 && ident_char(comment[pos - 1])) {
      pos += 4;
      continue;
    }
    std::size_t i = pos + 4;
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i]))) {
      ++i;
    }
    std::string word;
    while (i < comment.size() && ident_char(comment[i])) word += comment[i++];
    // No word at all => prose mentioning the marker, not an annotation.
    if (word.empty()) {
      pos = i;
      continue;
    }
    return word;
  }
  return std::nullopt;
}

// ---- the scanner -----------------------------------------------------------

void scan_file(const fs::path& file, const std::string& display_path,
               ScanConfig& cfg, std::vector<Finding>& findings) {
  std::ifstream in(file);
  if (!in) {
    findings.push_back({display_path, 0, "bad-suppression",
                        "cannot open file"});
    return;
  }
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) raw.push_back(line);
  std::vector<Line> lines = preprocess(raw);

  std::string all_code;
  LineMap lm;
  for (const auto& l : lines) {
    lm.starts.push_back(all_code.size());
    all_code += l.code;
    all_code += '\n';
  }

  // Local container names: everything declared in this file, plus the
  // cross-file table restricted to plausible member/long names.
  std::set<std::string> unordered_names(cfg.global_unordered);
  for (const auto& n : unordered_decl_names(all_code)) {
    unordered_names.insert(n);
  }

  // Suppressions per line: rule set that is allowed on that line.
  std::vector<std::set<std::string>> allowed(lines.size() + 1);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    if (lines[li].comment.find("detlint") == std::string::npos) continue;
    auto sup = parse_suppression(lines[li].comment);
    if (!sup) continue;
    int ln = static_cast<int>(li) + 1;
    if (sup->malformed) {
      findings.push_back({display_path, ln, "bad-suppression", sup->detail});
      continue;
    }
    if (!sup->has_reason) {
      // The annotation itself is the finding; it still masks the target
      // rule so the fix is "write the reason", not two overlapping errors.
      findings.push_back(
          {display_path, ln, "bad-suppression",
           "allow() without a reason — append '— <why this site is safe>'"});
    }
    // Applies to this line and, for comment-above style, the next line.
    for (const auto& r : sup->rules) {
      allowed[li].insert(r);
      if (li + 1 < allowed.size()) allowed[li + 1].insert(r);
    }
  }

  // Ownership annotations per line (the grammar behind par-ref-capture).
  std::vector<bool> par_annotated(lines.size(), false);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    auto ann = parse_par_annotation(lines[li].comment);
    if (!ann) continue;
    if (*ann == "owned" || *ann == "merged") {
      par_annotated[li] = true;
    } else {
      findings.push_back(
          {display_path, static_cast<int>(li) + 1, "bad-suppression",
           "malformed ownership annotation 'par: " + *ann +
               "' — expected 'par: owned' or 'par: merged'"});
    }
  }

  auto report = [&](std::size_t li, const std::string& rule,
                    const std::string& msg) {
    if (li < allowed.size() && allowed[li].count(rule)) return;
    findings.push_back({display_path, static_cast<int>(li) + 1, rule, msg});
  };

  bool money_scope = path_in(cfg.money_paths, display_path);
  bool sim_scope = path_in(cfg.sim_hot_paths, display_path);

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    if (code.empty()) continue;
    std::smatch m;

    if (std::regex_search(code, m, kBannedTime)) {
      report(li, "banned-time",
             "wall-clock source '" + m.str() +
                 "' — simulation code must use SimTime");
    }
    if (std::regex_search(code, m, kBannedRandom)) {
      report(li, "banned-random",
             "non-deterministic randomness '" + m.str() +
                 "' — use jupiter::Rng (bit-identical across stdlibs)");
    }
    // hash-iteration: range-for over a known unordered container...
    auto begin_it = std::sregex_iterator(code.begin(), code.end(), kRangeFor);
    for (auto it = begin_it; it != std::sregex_iterator(); ++it) {
      std::string range = (*it)[2].str();
      if (unordered_names.count(range)) {
        report(li, "hash-iteration",
               "range-for over unordered container '" + range +
                   "' — hash order leaks nondeterminism; use a sorted "
                   "container or sort the keys first");
      }
    }
    // ...or an explicit .begin()/.cbegin() call on one.
    for (const auto& n : unordered_names) {
      for (const char* meth : {".begin()", ".cbegin()", ".rbegin()"}) {
        if (code.find(n + meth) != std::string::npos) {
          report(li, "hash-iteration",
                 "iterator over unordered container '" + n +
                     "' — hash order leaks nondeterminism");
        }
      }
    }
    if (sim_scope && code.find("std::function") != std::string::npos) {
      report(li, "sim-std-function",
             "std::function in a simulator hot path — events carry "
             "InlineFunction (inline capture, no per-event allocation); use "
             "Simulator::Callback, or Callback::boxed() for a deliberate, "
             "counted allocation");
    }
    if (money_scope && std::regex_search(code, m, kFloatMoney)) {
      report(li, "float-money",
             "floating-point money variable '" + m[2].str() +
                 "' in a billing path — use Money (integer micro-dollars)");
    }
    if (std::regex_search(code, m, kFloatDuration)) {
      report(li, "float-duration",
             "floating-point duration variable '" + m[2].str() +
                 "' — lease durations, windows and timeouts are integer "
                 "sim-seconds (SimTime/TimeDelta); float timing drifts");
    }
    // ptr-key-ordered: std::map< / std::set< with a pointer first arg.  The
    // key type may wrap onto the next line, so parse from a small window
    // starting at the match.
    std::string window = code;
    for (std::size_t w = li + 1; w < lines.size() && w < li + 4; ++w) {
      window += '\n';
      window += lines[w].code;
    }
    for (const std::string key : {"std::map<", "std::set<"}) {
      std::size_t pos = 0;
      while ((pos = window.find(key, pos)) != std::string::npos) {
        if (pos >= code.size()) break;  // starts on a later line
        std::string a = first_template_arg(window, pos + key.size());
        if (!a.empty() && a.back() == '*') {
          report(li, "ptr-key-ordered",
                 "ordered container keyed by raw pointer '" + a +
                     "' — iteration order is address order, which varies "
                     "run to run");
        }
        pos += key.size();
      }
    }
  }

  // ---- parlint: shared statics + registries --------------------------------
  bool uses_par = has_token(all_code, kParFn);
  for (const StaticDecl& d : collect_statics(all_code, lm)) {
    if (d.is_function || d.is_immutable) continue;
    if (d.is_container) {
      // Registry-shaped: must be in the manifest, regardless of whether
      // this TU itself fans out — registries are process-wide.
      bool listed = false;
      for (ManifestEntry& e : cfg.manifest) {
        if (e.path == display_path && e.name == d.name) {
          e.used = true;
          listed = true;
        }
      }
      if (!listed) {
        report(d.line, "par-registry",
               "mutable static container '" + d.name +
                   "' — a process-wide registry must be listed in the "
                   "checked manifest (tools/detlint/par_shared_manifest.txt) "
                   "with a reason");
      }
      continue;
    }
    if (uses_par) {
      report(d.line, "par-shared",
             "mutable static '" + d.name +
                 "' in a translation unit that fans out via " + kParFn +
                 " — shared mutable state breaks thread-count determinism; "
                 "annotate a deliberate site with 'detlint: "
                 "allow(par-shared) — <why safe>'");
    }
  }

  // ---- parlint: ref captures + order-dependent reductions ------------------
  for (const ParCall& call : collect_par_calls(all_code, lm)) {
    if (call.has_ref_capture) {
      bool annotated = false;
      std::size_t lo = call.line >= 2 ? call.line - 2 : 0;
      std::size_t hi = std::max(call.line, call.lambda_line);
      for (std::size_t li = lo; li <= hi && li < lines.size(); ++li) {
        if (par_annotated[li]) annotated = true;
      }
      if (!annotated) {
        report(call.line, "par-ref-capture",
               "by-reference lambda capture passed to " + kParFn +
                   " without an ownership annotation — write '// par: owned' "
                   "(indices write disjoint state) or '// par: merged' "
                   "(deterministic merge after the join) on or above the "
                   "call");
      }
    }
    if (call.body_open == std::string::npos) continue;
    const std::string body =
        all_code.substr(call.body_open + 1, call.body_close - call.body_open - 1);
    auto body_line = [&](std::size_t body_off) {
      return lm.line_of(call.body_open + 1 + body_off);
    };
    // x.push_back(...) / x.emplace_back(...) on a non-local, non-indexed x.
    for (const std::string meth : {".push_back", ".emplace_back"}) {
      std::size_t pos = 0;
      while ((pos = body.find(meth, pos)) != std::string::npos) {
        std::size_t end = pos;
        bool indexed = end > 0 && body[end - 1] == ']';
        std::string root = root_ident_before(body, end);
        pos += meth.size();
        if (root.empty() || indexed || declared_in(body, root)) continue;
        report(body_line(pos - meth.size()), "par-order-dep",
               "container append to '" + root +
                   "' inside a parallel body — insertion order depends on "
                   "thread interleaving; fill per-index slots and merge "
                   "after the join");
      }
    }
    // x += ... on a non-local, non-indexed x.
    std::size_t pos = 0;
    while ((pos = body.find("+=", pos)) != std::string::npos) {
      std::size_t end = pos;
      pos += 2;
      while (end > 0 && (body[end - 1] == ' ' || body[end - 1] == '\t')) --end;
      if (end == 0) continue;
      bool indexed = body[end - 1] == ']';
      std::string root = root_ident_before(body, end);
      if (root.empty() || indexed || declared_in(body, root)) continue;
      report(body_line(pos - 2), "par-order-dep",
             "accumulation '" + root +
                 " +=' inside a parallel body — order-sensitive reduction; "
                 "accumulate per-index and fold deterministically after the "
                 "join");
    }
  }
}

// ---- manifest --------------------------------------------------------------

// Manifest line grammar (one registry per line, '#' comments):
//   <display-path>:<identifier> — <reason>
std::vector<ManifestEntry> load_manifest(const fs::path& file,
                                         std::vector<Finding>& findings,
                                         const std::string& display) {
  std::vector<ManifestEntry> out;
  std::ifstream in(file);
  if (!in) {
    findings.push_back({display, 0, "bad-suppression",
                        "cannot open manifest file"});
    return out;
  }
  int ln = 0;
  for (std::string line; std::getline(in, line);) {
    ++ln;
    auto b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    ManifestEntry e;
    e.line = ln;
    auto colon = line.find(':', b);
    if (colon == std::string::npos) {
      findings.push_back({display, ln, "bad-suppression",
                          "manifest line has no ':' separator"});
      continue;
    }
    e.path = line.substr(b, colon - b);
    std::size_t i = colon + 1;
    while (i < line.size() && ident_char(line[i])) e.name += line[i++];
    // Reason: text past the dash/em-dash separator.
    while (i < line.size() &&
           (std::isspace(static_cast<unsigned char>(line[i])) ||
            line[i] == '-' || line[i] == ':' ||
            static_cast<unsigned char>(line[i]) == 0xE2 ||
            static_cast<unsigned char>(line[i]) == 0x80 ||
            static_cast<unsigned char>(line[i]) == 0x94)) {
      ++i;
    }
    e.reason = line.substr(i);
    if (e.name.empty() || e.reason.empty()) {
      findings.push_back(
          {display, ln, "bad-suppression",
           "manifest entry needs '<path>:<name> — <reason>' (reason is "
           "mandatory, like allow())"});
      continue;
    }
    out.push_back(std::move(e));
  }
  return out;
}

// Stale-entry check: every manifest entry whose file was scanned must have
// matched a registry declaration.  Entries for unscanned files are left
// alone (a partial-path scan must not invalidate the manifest).
void check_manifest_stale(const ScanConfig& cfg,
                          const std::set<std::string>& scanned,
                          std::vector<Finding>& findings) {
  for (const ManifestEntry& e : cfg.manifest) {
    if (e.used || !scanned.count(e.path)) continue;
    findings.push_back(
        {cfg.manifest_path, e.line, "par-registry",
         "stale manifest entry '" + e.path + ":" + e.name +
             "' — no such mutable static container exists any more; delete "
             "the entry"});
  }
}

void collect_files(const fs::path& root, const std::string& rel,
                   const ScanConfig& cfg,
                   std::vector<std::pair<fs::path, std::string>>& files) {
  fs::path p = root / rel;
  auto keep = [&](const fs::path& f, const std::string& disp) {
    auto ext = f.extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") return;
    for (const auto& s : cfg.skips) {
      if (disp.find(s) != std::string::npos) return;
    }
    files.emplace_back(f, disp);
  };
  if (fs::is_regular_file(p)) {
    keep(p, rel);
    return;
  }
  if (!fs::is_directory(p)) {
    std::cerr << "detlint: no such path: " << p << "\n";
    std::exit(2);
  }
  std::vector<fs::path> entries;
  for (const auto& e : fs::recursive_directory_iterator(p)) {
    if (e.is_regular_file()) entries.push_back(e.path());
  }
  std::sort(entries.begin(), entries.end());  // deterministic report order
  for (const auto& f : entries) {
    keep(f, fs::relative(f, root).generic_string());
  }
}

std::vector<Finding> run_scan(const fs::path& root,
                              const std::vector<std::string>& rel_paths,
                              ScanConfig cfg) {
  std::vector<std::pair<fs::path, std::string>> files;
  for (const auto& rp : rel_paths) collect_files(root, rp, cfg, files);

  // Pass 1: cross-file unordered-container symbol table.  Only names that
  // look like members (trailing '_') or are >= 3 chars join the global
  // table — single-letter locals would poison unrelated files.
  for (const auto& [file, disp] : files) {
    std::ifstream in(file);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string contents = ss.str();
    std::vector<std::string> raw;
    {
      std::istringstream is(contents);
      for (std::string line; std::getline(is, line);) raw.push_back(line);
    }
    auto lines = preprocess(raw);
    std::string code;
    for (const auto& l : lines) {
      code += l.code;
      code += '\n';
    }
    for (const auto& n : unordered_decl_names(code)) {
      if (n.size() >= 3 || n.back() == '_') cfg.global_unordered.insert(n);
    }
  }

  std::vector<Finding> findings;
  std::set<std::string> scanned;
  for (const auto& [file, disp] : files) {
    scanned.insert(disp);
    scan_file(file, disp, cfg, findings);
  }
  check_manifest_stale(cfg, scanned, findings);
  return findings;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Machine-readable findings: a JSON array, one object per finding, in the
// same deterministic order as the human report.  CI diffs this.
void print_findings_json(const std::vector<Finding>& findings) {
  std::cout << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << "  {\"file\": \"" << json_escape(f.file)
              << "\", \"line\": " << f.line << ", \"rule\": \""
              << json_escape(f.rule) << "\", \"message\": \""
              << json_escape(f.message) << "\"}"
              << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  std::cout << "]\n";
}

// ---- self-test -------------------------------------------------------------

int self_test(const fs::path& fixture_dir) {
  struct Case {
    std::string file;
    // expected: rule that every finding must carry; empty => must be clean
    std::string rule;
    bool must_find = true;
  };
  const std::vector<Case> cases = {
      {"banned_time_fail.cpp", "banned-time", true},
      {"banned_random_fail.cpp", "banned-random", true},
      {"hash_iteration_fail.cpp", "hash-iteration", true},
      {"float_money_fail.cpp", "float-money", true},
      {"float_duration_fail.cpp", "float-duration", true},
      {"ptr_key_ordered_fail.cpp", "ptr-key-ordered", true},
      {"sim_std_function_fail.cpp", "sim-std-function", true},
      {"suppression_missing_reason.cpp", "bad-suppression", true},
      {"obs_wall_timer_fail.cpp", "banned-time", true},
      {"par_shared_fail.cpp", "par-shared", true},
      {"par_registry_fail.cpp", "par-registry", true},
      {"obs_shard_unregistered_fail.cpp", "par-registry", true},
      {"par_ref_capture_fail.cpp", "par-ref-capture", true},
      {"par_order_dep_fail.cpp", "par-order-dep", true},
      {"clean_pass.cpp", "", false},
      {"suppression_ok.cpp", "", false},
      {"par_clean_pass.cpp", "", false},
      {"par_suppression_ok.cpp", "", false},
  };
  int failures = 0;
  // The case table must stay exhaustive over the rule list: every rule has
  // at least one fixture that trips it.  Adding a rule without a fixture is
  // a self-test failure, not a silent gap.
  for (const auto& r : kRuleNames) {
    bool covered = false;
    for (const auto& c : cases) {
      if (c.must_find && c.rule == r) covered = true;
    }
    if (!covered) {
      std::cerr << "self-test: rule '" << r
                << "' has no must-find fixture — the fixture contract is no "
                   "longer exhaustive\n";
      ++failures;
    }
  }
  auto fixture_cfg = [&] {
    ScanConfig cfg;
    cfg.skips.clear();
    // Fixtures live outside src/market and src/sim — put them in both
    // scopes so the path-gated fixtures can trip.
    cfg.money_paths = {fixture_dir.generic_string()};
    cfg.sim_hot_paths = {fixture_dir.generic_string()};
    return cfg;
  };
  for (const auto& c : cases) {
    fs::path f = fixture_dir / c.file;
    if (!fs::exists(f)) {
      std::cerr << "self-test: missing fixture " << f << "\n";
      ++failures;
      continue;
    }
    ScanConfig cfg = fixture_cfg();
    std::vector<Finding> findings;
    scan_file(f, (fixture_dir / c.file).generic_string(), cfg, findings);
    if (!c.must_find) {
      if (!findings.empty()) {
        std::cerr << "self-test: " << c.file << " must be clean but found:\n";
        print_findings(findings);
        ++failures;
      }
      continue;
    }
    if (findings.empty()) {
      std::cerr << "self-test: " << c.file << " tripped nothing (expected "
                << c.rule << ")\n";
      ++failures;
      continue;
    }
    for (const auto& fd : findings) {
      if (fd.rule != c.rule) {
        std::cerr << "self-test: " << c.file << " tripped unexpected rule ["
                  << fd.rule << "] at line " << fd.line << " (expected only "
                  << c.rule << ")\n";
        ++failures;
      }
    }
  }
  // Manifest contract, checked programmatically against the par-registry
  // fixture: a matching entry silences the finding and is marked used; a
  // stale entry for a scanned file is itself a finding.
  {
    const std::string disp =
        (fixture_dir / "par_registry_fail.cpp").generic_string();
    ScanConfig cfg = fixture_cfg();
    cfg.manifest_path = "par_shared_manifest.txt";
    cfg.manifest.push_back({disp, "price_cache", "self-test entry", 1, false});
    cfg.manifest.push_back({disp, "gone_registry", "stale entry", 2, false});
    std::vector<Finding> findings;
    scan_file(fixture_dir / "par_registry_fail.cpp", disp, cfg, findings);
    check_manifest_stale(cfg, {disp}, findings);
    bool listed_silenced = true;
    bool stale_reported = false;
    for (const auto& fd : findings) {
      if (fd.rule == "par-registry" &&
          fd.message.find("price_cache") != std::string::npos &&
          fd.file == disp) {
        listed_silenced = false;
      }
      if (fd.rule == "par-registry" &&
          fd.message.find("stale manifest entry") != std::string::npos) {
        stale_reported = true;
      }
    }
    if (!cfg.manifest[0].used || !listed_silenced) {
      std::cerr << "self-test: manifest entry did not silence the "
                   "par-registry finding it matches\n";
      ++failures;
    }
    if (!stale_reported) {
      std::cerr << "self-test: stale manifest entry was not reported\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "detlint self-test: " << cases.size()
              << " fixtures ok, manifest contract ok, "
              << kRuleNames.size() << " rules covered\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  fs::path root = fs::current_path();
  ScanConfig cfg;
  std::vector<std::string> paths;
  bool json = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "detlint: " << a << " needs an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--root") {
      root = next();
    } else if (a == "--self-test") {
      return self_test(next());
    } else if (a == "--money-paths") {
      cfg.money_paths.clear();
      std::string csv = next(), cur;
      for (char c : csv) {
        if (c == ',') {
          if (!cur.empty()) cfg.money_paths.push_back(cur);
          cur.clear();
        } else {
          cur += c;
        }
      }
      if (!cur.empty()) cfg.money_paths.push_back(cur);
    } else if (a == "--skip") {
      cfg.skips.push_back(next());
    } else if (a == "--no-skip") {
      cfg.skips.clear();
    } else if (a == "--manifest") {
      std::string mf = next();
      cfg.manifest_path = mf;
      std::vector<Finding> errs;
      cfg.manifest = load_manifest(mf, errs, mf);
      if (!errs.empty()) {
        print_findings(errs);
        return 2;
      }
    } else if (a == "--json") {
      json = true;
    } else if (a == "--help" || a == "-h") {
      std::cout
          << "usage: detlint [--root DIR] [--money-paths a,b] [--skip S]... "
             "[--manifest FILE] [--json] [--no-skip] "
             "PATH...\n       detlint --self-test FIXTURE_DIR\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "detlint: unknown flag " << a << "\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples"};

  auto findings = run_scan(root, paths, cfg);
  if (json) {
    print_findings_json(findings);
    return findings.empty() ? 0 : 1;
  }
  print_findings(findings);
  if (findings.empty()) {
    std::cout << "detlint: clean (" << paths.size() << " roots)\n";
    return 0;
  }
  std::cout << "detlint: " << findings.size() << " finding(s)\n";
  return 1;
}
