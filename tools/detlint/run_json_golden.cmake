# Golden-file test for `detlint --json` (ctest: jupiter_detlint_json_golden).
# Runs detlint over the dedicated fixture and demands byte-identical JSON —
# CI and future tooling diff this format, so drift is a breaking change.
#
# Variables: DETLINT (binary), ROOT (source dir), GOLDEN (expected output).
execute_process(
  COMMAND ${DETLINT} --root ${ROOT} --no-skip --json
          tests/detlint_fixtures/json_golden_input.cpp
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 1)
  message(FATAL_ERROR
          "detlint --json on the golden fixture exited ${rv} (expected 1 — "
          "the fixture carries deliberate findings)")
endif()
file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "detlint --json output drifted from ${GOLDEN}:\n"
                      "---- actual ----\n${actual}\n---- expected ----\n"
                      "${expected}")
endif()
